"""The durable content-addressed backend: segment files + digest index.

:class:`DurableStore` persists two kinds of records under a store
directory, both as framed :class:`~repro.service.storage.journal.Journal`
lines:

* **results** — canonical :meth:`ColoringResult.as_dict` JSON under its
  ``r1:``/``u1:`` digest, appended to rolling segment files
  (``segments/seg-000001.log``, …).  Because keys are content digests a
  put is idempotent: a key already indexed is never rewritten, which is
  also what makes double replay a no-op on disk.
* **graphs** — ``(n, edge list)`` under the same digest, so update-verb
  replay can rebuild a chain's base instance after a restart.

A compact index (``index.log``: ``key -> (segment, offset, length)``
entries plus eviction tombstones) makes a ``get`` one seek and one
bounded, CRC-checked read.  The index is itself a journal, so it
recovers its own torn tail; records that reached a segment but whose
index entry didn't survive (the kill-between-write-and-index crash) are
found at open time by scanning each segment past its highest indexed
offset and re-indexing what's there.  Nothing in recovery trusts file
contents: torn or corrupt tails are truncated, and a record whose bytes
fail the CRC on read is treated as a miss.

:class:`TieredResultStore` composes the in-memory
:class:`~repro.service.cache.ResultCache` in front of a
:class:`DurableStore`: reads probe memory first and promote durable hits
into the memory tier, writes go through to both.  It satisfies the
:class:`~repro.service.storage.api.ResultStore` protocol, so the gateway
cannot tell it from the bare cache — except that after a restart its
misses aren't.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Any

from repro.api.result import ColoringResult
from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.service.storage.journal import Journal

__all__ = ["DurableStore", "TieredResultStore"]

_KIND_RESULT = "result"
_KIND_GRAPH = "graph"
_SEGMENT_DIR = "segments"
_INDEX_NAME = "index.log"


def _segment_name(seq: int) -> str:
    return f"seg-{seq:06d}.log"


class DurableStore:
    """Append-only segment files of canonical JSON + a compact digest index.

    Parameters
    ----------
    root:
        The store directory (created if missing).  One serving process
        owns it exclusively; shards use per-shard subdirectories.
    fsync:
        Durability policy for both segments and index — a name from
        :data:`~repro.service.storage.journal.FSYNC_POLICIES` or a
        prebuilt :class:`FsyncPolicy`.
    segment_max_bytes:
        Roll to a fresh segment once the active one grows past this.
    meters:
        Optional :class:`~repro.service.storage.api.StoreMeters`.
    """

    def __init__(
        self,
        root: str | Path,
        fsync: str = "batch",
        segment_max_bytes: int = 64 * 1024 * 1024,
        meters: Any | None = None,
    ):
        self.root = Path(root)
        self.fsync_mode = fsync if isinstance(fsync, str) else fsync.mode
        self.segment_max_bytes = segment_max_bytes
        self._meters = meters
        self._lock = threading.Lock()
        # (kind, key) -> (segment name, offset, length)
        self._index: dict[tuple[str, str], tuple[str, int, int]] = {}
        self.hits = 0
        self.misses = 0
        self.corrupt_reads = 0
        self.torn_records = 0
        self.recovered_records = 0

        (self.root / _SEGMENT_DIR).mkdir(parents=True, exist_ok=True)
        self._index_journal = Journal(self.root / _INDEX_NAME, fsync=fsync)
        self.torn_records += self._index_journal.torn_records
        self._load_index()
        self._recover_unindexed()
        self._active_name, self._active = self._open_active()

    # -- open-time recovery ------------------------------------------------

    def _segment_path(self, name: str) -> Path:
        return self.root / _SEGMENT_DIR / name

    def _segment_names(self) -> list[str]:
        return sorted(p.name for p in (self.root / _SEGMENT_DIR).glob("seg-*.log"))

    def _load_index(self) -> None:
        """Replay ``index.log`` into the in-memory map (last entry wins;
        tombstones delete)."""
        for _, _, entry in self._index_journal.scan():
            kind = entry.get("kind")
            key = entry.get("key")
            if not isinstance(kind, str) or not isinstance(key, str):
                continue
            if entry.get("del"):
                self._index.pop((kind, key), None)
            else:
                seg, off, length = entry.get("seg"), entry.get("off"), entry.get("len")
                if isinstance(seg, str) and isinstance(off, int) and isinstance(length, int):
                    self._index[(kind, key)] = (seg, off, length)

    def _recover_unindexed(self) -> None:
        """Re-index records that hit a segment but not the index.

        A crash between the segment append and the index append leaves a
        durable record invisible to the map; scanning each segment past
        its highest indexed offset finds exactly those.  Opening the
        segment as a :class:`Journal` also truncates its torn tail (the
        kill-mid-append crash).
        """
        covered: dict[str, int] = {}
        for seg, off, length in self._index.values():
            covered[seg] = max(covered.get(seg, 0), off + length)
        for name in self._segment_names():
            journal = Journal(self._segment_path(name), fsync="never")
            self.torn_records += journal.torn_records
            try:
                for off, length, payload in journal.scan(covered.get(name, 0)):
                    kind = payload.get("kind")
                    key = payload.get("key")
                    if not isinstance(kind, str) or not isinstance(key, str):
                        continue
                    if (kind, key) not in self._index:
                        self._index[(kind, key)] = (name, off, length)
                        self._index_journal.append(
                            {"kind": kind, "key": key, "seg": name,
                             "off": off, "len": length}
                        )
                        self.recovered_records += 1
            finally:
                journal.close()

    def _open_active(self) -> tuple[str, Journal]:
        names = self._segment_names()
        if names:
            last = names[-1]
            if self._segment_path(last).stat().st_size < self.segment_max_bytes:
                return last, Journal(self._segment_path(last), fsync=self.fsync_mode)
            seq = int(last[4:10]) + 1
        else:
            seq = 1
        name = _segment_name(seq)
        return name, Journal(self._segment_path(name), fsync=self.fsync_mode)

    def _roll_if_needed_locked(self) -> None:
        if self._active.size < self.segment_max_bytes:
            return
        self._active.close()
        seq = int(self._active_name[4:10]) + 1
        self._active_name = _segment_name(seq)
        self._active = Journal(
            self._segment_path(self._active_name), fsync=self.fsync_mode
        )

    # -- writes ------------------------------------------------------------

    def _append_locked(self, kind: str, key: str, payload: dict[str, Any]) -> None:
        if (kind, key) in self._index:
            return  # content-addressed: same key, same bytes — idempotent
        self._roll_if_needed_locked()
        fsyncs_before = self._active.fsyncs + self._index_journal.fsyncs
        off, length = self._active.append(
            {"kind": kind, "key": key, **payload}
        )
        self._index[(kind, key)] = (self._active_name, off, length)
        self._index_journal.append(
            {"kind": kind, "key": key, "seg": self._active_name,
             "off": off, "len": length}
        )
        if self._meters is not None:
            self._meters.append(kind, length)
            self._meters.fsync(
                self._active.fsyncs + self._index_journal.fsyncs - fsyncs_before
            )

    def put(self, key: str, result: ColoringResult) -> None:
        """Persist one result under its content digest (idempotent)."""
        with self._lock:
            self._append_locked(_KIND_RESULT, key, {"result": result.as_dict()})

    def put_graph(self, key: str, graph: Graph) -> None:
        """Persist one graph instance under the digest it parents."""
        with self._lock:
            self._append_locked(
                _KIND_GRAPH,
                key,
                {"n": graph.n, "edges": [[u, v] for u, v in graph.edges()]},
            )

    # -- reads -------------------------------------------------------------

    def _read_locked(self, kind: str, key: str) -> dict[str, Any] | None:
        entry = self._index.get((kind, key))
        if entry is None:
            self.misses += 1
            if self._meters is not None:
                self._meters.request("durable", hit=False)
            return None
        seg, off, length = entry
        if seg == self._active_name:
            payload = self._active.read_at(off, length)
        else:
            journal = Journal(self._segment_path(seg), fsync="never")
            try:
                payload = journal.read_at(off, length)
            finally:
                journal.close()
        if payload is None or payload.get("key") != key or payload.get("kind") != kind:
            # Bytes on disk don't frame-check: treat as a miss, never crash.
            self.corrupt_reads += 1
            self.misses += 1
            if self._meters is not None:
                self._meters.request("durable", hit=False)
            return None
        self.hits += 1
        if self._meters is not None:
            self._meters.request("durable", hit=True)
        return payload

    def get(self, key: str) -> ColoringResult | None:
        """The persisted result for ``key``, or None."""
        with self._lock:
            payload = self._read_locked(_KIND_RESULT, key)
        if payload is None:
            return None
        try:
            return ColoringResult.from_dict(payload["result"])
        except (KeyError, TypeError, ValueError):
            self.corrupt_reads += 1
            return None

    def get_graph(self, key: str) -> Graph | None:
        """The persisted graph for ``key``, or None."""
        with self._lock:
            payload = self._read_locked(_KIND_GRAPH, key)
        if payload is None:
            return None
        try:
            return Graph(payload["n"], [(u, v) for u, v in payload["edges"]])
        except (GraphError, KeyError, TypeError, ValueError):
            # Corrupt-payload shapes (KeyError/TypeError/ValueError) and
            # structurally invalid graphs (GraphError) both count as a
            # corrupt read and miss; anything else is a real bug and
            # must surface.
            self.corrupt_reads += 1
            return None

    # -- eviction ----------------------------------------------------------

    def _evict_locked(self, kind: str, key: str) -> bool:
        if self._index.pop((kind, key), None) is None:
            return False
        self._index_journal.append({"kind": kind, "key": key, "del": 1})
        return True

    def evict(self, key: str) -> bool:
        """Tombstone a result (bytes stay until compaction; lookups miss)."""
        with self._lock:
            return self._evict_locked(_KIND_RESULT, key)

    def evict_graph(self, key: str) -> bool:
        with self._lock:
            return self._evict_locked(_KIND_GRAPH, key)

    # -- inventory ---------------------------------------------------------

    def result_keys(self) -> list[str]:
        with self._lock:
            return [k for kind, k in self._index if kind == _KIND_RESULT]

    def graph_keys(self) -> list[str]:
        with self._lock:
            return [k for kind, k in self._index if kind == _KIND_GRAPH]

    def __len__(self) -> int:
        with self._lock:
            return sum(1 for kind, _ in self._index if kind == _KIND_RESULT)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return (_KIND_RESULT, key) in self._index

    def clear(self) -> None:
        """Tombstone everything (the volatile-protocol clear; segment
        bytes remain until compaction)."""
        with self._lock:
            for kind, key in list(self._index):
                self._evict_locked(kind, key)

    # -- lifecycle ---------------------------------------------------------

    def sync(self) -> None:
        with self._lock:
            self._active.sync()
            self._index_journal.sync()

    def close(self) -> None:
        with self._lock:
            self._active.close()
            self._index_journal.close()

    def stats(self) -> dict[str, Any]:
        with self._lock:
            results = sum(1 for kind, _ in self._index if kind == _KIND_RESULT)
            graphs = sum(1 for kind, _ in self._index if kind == _KIND_GRAPH)
            segments = self._segment_names()
            nbytes = sum(
                self._segment_path(name).stat().st_size for name in segments
            )
            return {
                "entries": results,
                "graphs": graphs,
                "segments": len(segments),
                "bytes": nbytes,
                "index_bytes": self._index_journal.size,
                "hits": self.hits,
                "misses": self.misses,
                "appends": self._active.appends,
                "fsyncs": self._active.fsyncs + self._index_journal.fsyncs,
                "torn_records": self.torn_records,
                "recovered_records": self.recovered_records,
                "corrupt_reads": self.corrupt_reads,
                "fsync": self.fsync_mode,
            }

    def __enter__(self) -> "DurableStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class TieredResultStore:
    """Memory in front, disk behind — one :class:`ResultStore` to callers.

    ``get`` probes the memory tier, falls through to the durable tier,
    and promotes durable hits into memory (so a replayed key pays the
    disk read once per restart).  ``put`` writes through to both.
    ``clear`` empties only the memory tier: the durable tier is the
    source of truth and survives operator cache flushes.
    """

    def __init__(
        self,
        memory: Any,
        durable: DurableStore,
        meters: Any | None = None,
    ):
        self.memory = memory
        self.durable = durable
        self._meters = meters
        self.promotions = 0

    def get(self, key: str) -> ColoringResult | None:
        result = self.memory.get(key)
        if result is not None:
            if self._meters is not None:
                self._meters.request("memory", hit=True)
            return result
        if self._meters is not None:
            self._meters.request("memory", hit=False)
        result = self.durable.get(key)
        if result is not None:
            self.memory.put(key, result)
            self.promotions += 1
        return result

    def put(self, key: str, result: ColoringResult) -> None:
        self.memory.put(key, result)
        self.durable.put(key, result)

    def evict(self, key: str) -> bool:
        dropped_memory = self.memory.evict(key)
        dropped_durable = self.durable.evict(key)
        return dropped_memory or dropped_durable

    def clear(self) -> None:
        self.memory.clear()

    def __len__(self) -> int:
        return len(self.durable)

    def __contains__(self, key: str) -> bool:
        return key in self.memory or key in self.durable

    def stats(self) -> dict[str, Any]:
        memory_stats = self.memory.stats()
        if hasattr(memory_stats, "as_dict"):
            memory_stats = memory_stats.as_dict()
        return {
            "tiered": True,
            "promotions": self.promotions,
            "memory": memory_stats,
            "durable": self.durable.stats(),
        }
