"""The append-only journal: one durable file, framed JSON records.

Every durable structure in :mod:`repro.service.storage` — result/graph
segments, the compact digest index, the update WAL — is the same thing
on disk: a file that only ever grows, holding one framed record per
line.  :class:`Journal` is that file, with the three properties the
backends need and nothing else:

* **Framing that survives a crash.**  A record is
  ``<crc32-hex8> <payload-json>\\n``: the CRC covers the payload bytes,
  and a record only *exists* once its newline hit the disk.  Recovery
  (:meth:`recover`) walks the file from any offset and stops at the
  first torn record — a line without its trailing newline, with a CRC
  mismatch, or with unparseable JSON — then truncates the file back to
  the last good boundary so the next append never lands behind garbage.
  This is the ``load_spans`` skip-the-torn-tail discipline, hardened
  into a write path.
* **A configurable fsync policy** (:class:`FsyncPolicy`):
  ``"always"`` fsyncs after every append (a record survives the kernel
  dying the instant :meth:`append` returns), ``"batch"`` fsyncs every
  ``batch_ops`` appends and on :meth:`sync`/:meth:`close` (bounded loss
  window, near-``"never"`` throughput), ``"never"`` leaves flushing to
  the OS (contents survive process death — the write() happened — but
  not power loss).  Torn-tail recovery makes every policy *safe*; the
  policy only chooses how much acknowledged data a power cut may undo.
* **Exact offsets.**  :meth:`append` returns ``(offset, length)`` of the
  written record, which is what the durable store's compact index
  records so a ``get`` is one seek + one bounded read.

Single-writer by design: each serving process owns its store directory
(shards get ``<store-dir>/<shard-id>``), so there is no cross-process
interleaving to defend against.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Any, Iterator

__all__ = ["FsyncPolicy", "Journal", "encode_record", "decode_record"]

#: Accepted fsync policy names, in decreasing durability order.
FSYNC_POLICIES = ("always", "batch", "never")


class FsyncPolicy:
    """When to force appended bytes onto the platter.

    ``always`` — fsync per append; ``batch`` — fsync every ``batch_ops``
    appends (and on explicit ``sync``/``close``); ``never`` — flush to
    the kernel only.
    """

    def __init__(self, mode: str = "batch", batch_ops: int = 32):
        if mode not in FSYNC_POLICIES:
            raise ValueError(
                f"unknown fsync policy {mode!r}; expected one of {FSYNC_POLICIES}"
            )
        if batch_ops < 1:
            raise ValueError(f"batch_ops must be >= 1, got {batch_ops}")
        self.mode = mode
        self.batch_ops = batch_ops
        self._pending = 0

    def after_append(self) -> bool:
        """Should the append that just happened fsync?"""
        if self.mode == "always":
            return True
        if self.mode == "never":
            return False
        self._pending += 1
        if self._pending >= self.batch_ops:
            self._pending = 0
            return True
        return False

    def on_sync(self) -> bool:
        """Should an explicit sync()/close() fsync?  (Everything but
        ``never`` pays the one syscall; ``never`` means never.)"""
        self._pending = 0
        return self.mode != "never"


def encode_record(payload: dict[str, Any]) -> bytes:
    """Frame one record: ``crc32-hex8 SP canonical-json LF``."""
    body = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    crc = zlib.crc32(body) & 0xFFFFFFFF
    return b"%08x " % crc + body + b"\n"


def decode_record(line: bytes) -> dict[str, Any] | None:
    """Unframe one complete line (``\\n`` already stripped or present);
    None for anything torn, corrupt, or mis-framed."""
    line = line.rstrip(b"\n")
    if len(line) < 10 or line[8:9] != b" ":
        return None
    try:
        crc = int(line[:8], 16)
    except ValueError:
        return None
    body = line[9:]
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        return None
    try:
        payload = json.loads(body)
    except (json.JSONDecodeError, UnicodeDecodeError):
        return None
    return payload if isinstance(payload, dict) else None


class Journal:
    """One append-only record file with torn-tail recovery.

    Opening an existing file runs :meth:`recover` immediately: the tail
    is truncated back to the last intact record, so appends always start
    at a clean boundary.  ``fsync`` is a policy name or a prebuilt
    :class:`FsyncPolicy`.
    """

    def __init__(self, path: str | Path, fsync: "str | FsyncPolicy" = "batch"):
        self.path = Path(path)
        self.policy = (
            fsync if isinstance(fsync, FsyncPolicy) else FsyncPolicy(fsync)
        )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.appends = 0
        self.fsyncs = 0
        self.torn_records = 0
        self._recovered_size = self._recover_tail()
        # Append-mode keeps the offset arithmetic honest even if a
        # foreign writer grew the file (which single-writer rules out).
        self._handle = open(self.path, "ab")
        self._size = self._handle.seek(0, os.SEEK_END)

    # -- recovery ----------------------------------------------------------

    def _recover_tail(self) -> int:
        """Scan the whole file; truncate past the last intact record.

        Returns the surviving size.  Missing file = empty journal.
        """
        try:
            size = self.path.stat().st_size
        except FileNotFoundError:
            return 0
        good_end = 0
        with open(self.path, "rb") as handle:
            while True:
                line = handle.readline()
                if not line:
                    break
                if not line.endswith(b"\n") or decode_record(line) is None:
                    self.torn_records += 1
                    break
                good_end += len(line)
        if good_end < size:
            with open(self.path, "r+b") as handle:
                handle.truncate(good_end)
        return good_end

    # -- writes ------------------------------------------------------------

    def append(self, payload: dict[str, Any]) -> tuple[int, int]:
        """Durably append one record; returns its ``(offset, length)``."""
        record = encode_record(payload)
        offset = self._size
        self._handle.write(record)
        self._handle.flush()
        self._size += len(record)
        self.appends += 1
        if self.policy.after_append():
            os.fsync(self._handle.fileno())
            self.fsyncs += 1
        return offset, len(record)

    def sync(self) -> None:
        """Flush and (policy permitting) fsync pending appends."""
        self._handle.flush()
        if self.policy.on_sync():
            os.fsync(self._handle.fileno())
            self.fsyncs += 1

    # -- reads -------------------------------------------------------------

    def read_at(self, offset: int, length: int) -> dict[str, Any] | None:
        """Decode the record at an exact ``(offset, length)`` (an index
        entry); None if the bytes there don't frame-check."""
        self._handle.flush()
        with open(self.path, "rb") as handle:
            handle.seek(offset)
            return decode_record(handle.read(length))

    def scan(self, start: int = 0) -> Iterator[tuple[int, int, dict[str, Any]]]:
        """Yield ``(offset, length, payload)`` for every intact record
        from ``start``; stops at the first torn record (append-only means
        nothing valid can follow one)."""
        self._handle.flush()
        with open(self.path, "rb") as handle:
            handle.seek(start)
            offset = start
            while True:
                line = handle.readline()
                if not line:
                    return
                if not line.endswith(b"\n"):
                    return
                payload = decode_record(line)
                if payload is None:
                    return
                yield offset, len(line), payload
                offset += len(line)

    # -- lifecycle ---------------------------------------------------------

    @property
    def size(self) -> int:
        return self._size

    def close(self) -> None:
        if self._handle.closed:
            return
        self.sync()
        self._handle.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Journal({self.path}, size={self._size}, fsync={self.policy.mode})"
