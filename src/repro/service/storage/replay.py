"""Warm-restart replay: rebuild chain heads from the WAL + durable base.

A restarted process opens its :class:`DurableStore` and immediately
serves every persisted solve result (reads fall through the tiered
store).  What it cannot serve yet are *updates*: the chain-head engines
died with the old process.  :func:`replay_chains` brings them back:

1. Read the WAL (append order).  Identify the **heads** — child digests
   no later record uses as a parent; everything else is interior to some
   chain.
2. For each head, walk parent pointers back to the **base**: the first
   parent with no WAL record of its own, necessarily an ``r1:`` solve
   digest (or a ``u1:`` digest whose prefix predates the WAL — then the
   chain is unreplayable and is skipped, not failed).
3. Load the base graph and base result from the durable store, seed an
   :class:`~repro.core.incremental.IncrementalColoring` on the dynamic
   backend, and reapply the lineage's deltas in order.  Repair is
   deterministic, so the rebuilt head is bit-identical to the engine the
   dead process held — the next ``update`` against it continues the
   chain as if the restart never happened.
4. Park the engine in the :class:`~repro.service.graphstore.GraphStore`
   under the head digest.

Replay is **idempotent**: it writes nothing durable (engines go to the
in-memory graph store; result puts during replay are all key-present
no-ops), so running it twice — or crashing mid-replay and running it
again — converges to the same state.  Broken chains (missing base,
delta that no longer applies) are counted and skipped; the service
degrades to the stale-parent → full-solve fallback for exactly those
chains, never refuses to start.
"""

from __future__ import annotations

import time
from typing import Any

from repro.service.storage.wal import config_from_payload

__all__ = ["replay_chains"]


def _lineages(records: list[dict[str, Any]]) -> list[list[dict[str, Any]]]:
    """Group WAL records into per-head lineages, base-first.

    ``records`` is in append order.  When the same child digest was
    produced twice (an update retried after a crash that lost the
    result but kept the WAL record), the last record wins.
    """
    by_child: dict[str, dict[str, Any]] = {}
    for record in records:
        by_child[record["child"]] = record
    parents = {record["parent"] for record in by_child.values()}
    heads = [child for child in by_child if child not in parents]
    lineages = []
    for head in heads:
        chain: list[dict[str, Any]] = []
        cursor: str | None = head
        seen = set()
        while cursor in by_child and cursor not in seen:
            seen.add(cursor)
            record = by_child[cursor]
            chain.append(record)
            cursor = record["parent"]
        chain.reverse()
        lineages.append(chain)
    return lineages


def replay_chains(
    wal: Any,
    durable: Any,
    graph_store: Any,
    cache: Any | None = None,
    meters: Any | None = None,
) -> dict[str, Any]:
    """Rebuild every replayable chain head; returns the replay report.

    ``cache`` (a :class:`ResultStore`) optionally receives each rebuilt
    head's result, so the first post-restart ``solve`` probe of a chain
    digest hits even if the old process died before persisting it.
    """
    from repro.api.solver import apply_incremental
    from repro.core.incremental import IncrementalColoring

    start = time.monotonic()
    report = {
        "chains_seen": 0,
        "chains_replayed": 0,
        "chains_skipped": 0,
        "deltas_replayed": 0,
        "results_indexed": len(durable) if durable is not None else 0,
        "wall_s": 0.0,
    }
    if wal is None or durable is None:
        return report

    for lineage in _lineages(list(wal.replay())):
        report["chains_seen"] += 1
        base_digest = lineage[0]["parent"]
        base_graph = durable.get_graph(base_digest)
        base_result = durable.get(base_digest)
        if base_graph is None or base_result is None:
            report["chains_skipped"] += 1
            continue
        try:
            config = config_from_payload(lineage[0].get("config"))
            engine = IncrementalColoring.from_result(
                base_graph,
                base_result,
                config=config,
                backend=lineage[0].get("backend", "dynamic"),
            )
            updated = None
            for record in lineage:
                updated = apply_incremental(
                    engine,
                    [(u, v) for u, v in record["added"]],
                    [(u, v) for u, v in record["removed"]],
                    config_from_payload(record.get("config")),
                    materialize_graph=False,
                )
                report["deltas_replayed"] += 1
        # Replay runs before the server binds and must never block
        # startup: *any* failure to rebuild a chain (typed engine
        # rejection, malformed WAL payload, or a genuine regression in a
        # re-registered engine) degrades to the retriable stale-parent
        # fallback rather than keeping the fleet down.
        # reprolint: disable=RPL005 -- breadth is the contract here
        except Exception:
            # A delta that no longer applies (e.g. its base was solved by
            # an engine since re-registered) downgrades to the stale-
            # parent fallback; replay must never block startup.
            report["chains_skipped"] += 1
            continue
        head_digest = lineage[-1]["child"]
        graph_store.put_engine(head_digest, engine)
        if cache is not None and updated is not None:
            cache.put(head_digest, updated.result)
        report["chains_replayed"] += 1

    report["wall_s"] = time.monotonic() - start
    if meters is not None:
        meters.replayed("result", report["results_indexed"])
        meters.replayed("chain", report["chains_replayed"])
        meters.replayed("delta", report["deltas_replayed"])
        meters.replay_seconds(report["wall_s"])
    return report
