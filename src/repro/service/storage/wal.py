"""The update write-ahead log: every applied delta, durably, in order.

The ``update`` verb mutates state the result store cannot capture: a
chain-head :class:`~repro.core.incremental.IncrementalColoring` engine
living in the :class:`~repro.service.graphstore.GraphStore`.  Results
are content-addressed and re-derivable; a live engine is neither — it
is the *product* of a specific sequence of deltas applied to a specific
base solve.  :class:`UpdateWAL` records exactly that sequence: one
record per successfully applied update, carrying the parent and child
digests, the edge delta, the result-affecting config payload, and the
repair backend.

Replay (:mod:`repro.service.storage.replay`) walks these records
child→parent back to a base ``r1:`` solve whose graph and result the
:class:`~repro.service.storage.durable.DurableStore` holds, rebuilds the
engine, and reapplies the deltas — deterministic repair means the
replayed chain head is bit-identical to the one the dead process held.

The WAL is written *after* an update succeeds (it logs facts, not
intents): a crash between the apply and the append loses only that
delta's chain-head — the next update on it degrades to the
:class:`~repro.errors.StaleParentError` → full-solve fallback clients
already handle.  Torn tails truncate on open like every journal.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Iterator

from repro.api.config import SolverConfig
from repro.service.storage.journal import Journal

__all__ = ["UpdateWAL", "update_record", "config_from_payload"]

_KIND_WAL = "wal"


def update_record(
    parent_digest: str,
    child_digest: str,
    edges_added: Any,
    edges_removed: Any,
    config: SolverConfig,
    backend: str,
) -> dict[str, Any]:
    """The canonical WAL payload for one applied update."""
    return {
        "parent": parent_digest,
        "child": child_digest,
        "added": [[int(u), int(v)] for u, v in edges_added],
        "removed": [[int(u), int(v)] for u, v in edges_removed],
        "config": config.without_observer().as_dict(),
        "backend": backend,
    }


def config_from_payload(payload: dict[str, Any] | None) -> SolverConfig:
    """Rebuild a :class:`SolverConfig` from its ``as_dict()`` form."""
    if not payload:
        return SolverConfig()
    params = payload.get("params")
    if params is not None:
        from repro.core.randomized import RandomizedParams

        params = RandomizedParams(**params)
    return SolverConfig(
        algorithm=payload.get("algorithm", "auto"),
        seed=payload.get("seed", 0),
        strict=payload.get("strict", False),
        validate=payload.get("validate", True),
        params=params,
        ruling_k=payload.get("ruling_k"),
        order=payload.get("order"),
    )


class UpdateWAL:
    """An append-only log of update deltas over one :class:`Journal`.

    Satisfies the :class:`~repro.service.storage.api.WriteAheadLog`
    protocol.  Single-writer like every journal; the gateway appends
    from its event loop only.
    """

    def __init__(
        self,
        path: str | Path,
        fsync: str = "batch",
        meters: Any | None = None,
    ):
        self._journal = Journal(path, fsync=fsync)
        self._meters = meters
        self.path = self._journal.path

    def append(self, record: dict[str, Any]) -> None:
        """Durably append one delta record (see :func:`update_record`)."""
        fsyncs_before = self._journal.fsyncs
        _, length = self._journal.append(record)
        if self._meters is not None:
            self._meters.append(_KIND_WAL, length)
            self._meters.fsync(self._journal.fsyncs - fsyncs_before)

    def replay(self) -> Iterator[dict[str, Any]]:
        """Every intact record in append order.

        Records missing the digest fields are skipped (defensively —
        nothing writes them), and the scan stops at the first torn
        record like every journal read.
        """
        for _, _, payload in self._journal.scan():
            if isinstance(payload.get("parent"), str) and isinstance(
                payload.get("child"), str
            ):
                yield payload

    def sync(self) -> None:
        self._journal.sync()

    def close(self) -> None:
        self._journal.close()

    def stats(self) -> dict[str, Any]:
        return {
            "bytes": self._journal.size,
            "appends": self._journal.appends,
            "fsyncs": self._journal.fsyncs,
            "torn_records": self._journal.torn_records,
            "fsync": self._journal.policy.mode,
        }

    def __enter__(self) -> "UpdateWAL":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
