"""Shared fixtures: canonical graphs used across the test suite."""

from __future__ import annotations

import pytest

from repro.graphs.generators import (
    complete_graph_minus_edge,
    high_girth_regular_graph,
    random_nice_graph,
    random_regular_graph,
    torus_grid,
)


@pytest.fixture(scope="session")
def cubic_graph():
    """A 300-node random cubic graph (Δ = 3)."""
    return random_regular_graph(300, 3, seed=11)


@pytest.fixture(scope="session")
def four_regular_graph():
    """A 300-node random 4-regular graph."""
    return random_regular_graph(300, 4, seed=12)


@pytest.fixture(scope="session")
def five_regular_graph():
    """A 200-node random 5-regular graph."""
    return random_regular_graph(200, 5, seed=13)


@pytest.fixture(scope="session")
def torus():
    """A 12x13 torus (4-regular, DCCs everywhere)."""
    return torus_grid(12, 13)


@pytest.fixture(scope="session")
def high_girth_cubic():
    """A 600-node cubic graph with girth >= 8 (DCC-free at radius 2-3)."""
    return high_girth_regular_graph(600, 3, girth=8, seed=7)


@pytest.fixture(scope="session")
def irregular_nice():
    """An irregular nice graph with Δ = 5 (boundary nodes everywhere)."""
    return random_nice_graph(250, 5, seed=21)


@pytest.fixture(scope="session")
def small_dcc():
    """K6 minus an edge: a single DCC with Δ = 5."""
    return complete_graph_minus_edge(6)
