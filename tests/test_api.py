"""Tests for the unified solver facade (:mod:`repro.api`).

Covers the acceptance criteria of the facade PR: registry completeness
(every registered name solves a smoke graph), ``solve()`` bit-identical
to the legacy entry points on the golden fixed seeds, ``solve_many``
determinism across worker counts (and >1.5× throughput when the machine
actually has spare cores), the JSON round-trip of
:class:`repro.api.ColoringResult`, and the ``on_phase`` observer.
"""

from __future__ import annotations

import json

import pytest

from repro import delta_color
from repro.api import (
    AlgorithmSpec,
    ColoringResult,
    SolverConfig,
    SolverPool,
    default_workers,
    get_algorithm,
    list_algorithms,
    register_algorithm,
    solve,
    solve_many,
)
from repro.api.registry import EngineRun
from repro.baselines.panconesi_srinivasan import ps_delta_coloring
from repro.core.deterministic import delta_coloring_deterministic
from repro.core.randomized import (
    RandomizedParams,
    delta_coloring_large_delta,
    delta_coloring_randomized,
    delta_coloring_small_delta,
)
from repro.core.slocal_coloring import slocal_delta_coloring
from repro.core.special_cases import color_graph
from repro.errors import NotNiceGraphError, ReproError
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    hypercube,
    path_graph,
    random_regular_graph,
    torus_grid,
)
from repro.graphs.named import petersen_graph
from repro.graphs.validation import validate_coloring

EXPECTED_NAMES = {
    "auto",
    "randomized",
    "randomized-small",
    "randomized-large",
    "deterministic",
    "slocal",
    "ps",
    "greedy",
    "components",
}

# The golden-seed instance set of tests/test_golden_seed.py.
GOLDEN_GRAPHS = {
    "petersen": petersen_graph,
    "torus_6x7": lambda: torus_grid(6, 7),
    "hypercube_4": lambda: hypercube(4),
    "rrg_64_5_s3": lambda: random_regular_graph(64, 5, seed=3),
}


class TestRegistry:
    def test_expected_names_registered(self):
        assert set(list_algorithms()) == EXPECTED_NAMES

    @pytest.mark.parametrize("name", sorted(EXPECTED_NAMES))
    def test_every_registered_name_solves_a_smoke_graph(self, name):
        graph = random_regular_graph(48, 4, seed=9)  # nice, Δ = 4
        result = solve(graph, algorithm=name, seed=1)
        assert result.n == graph.n
        assert len(result.colors) == graph.n
        validate_coloring(graph, list(result.colors), max_colors=result.palette)
        assert result.algorithm in EXPECTED_NAMES
        assert result.rounds >= 0
        assert result.wall_time_s >= 0

    def test_capability_metadata(self):
        assert get_algorithm("deterministic").deterministic
        assert get_algorithm("slocal").deterministic
        assert not get_algorithm("randomized").deterministic
        assert get_algorithm("randomized").needs_nice
        assert not get_algorithm("auto").needs_nice
        assert not get_algorithm("greedy").needs_nice
        assert get_algorithm("randomized").palette_bound == "Δ"
        assert get_algorithm("greedy").palette_bound == "Δ+1"

    def test_unknown_name_lists_the_registry(self):
        with pytest.raises(ReproError, match="unknown algorithm 'nope'"):
            solve(random_regular_graph(16, 3, seed=0), algorithm="nope")
        with pytest.raises(ReproError, match="randomized-large"):
            get_algorithm("nope")

    def test_duplicate_registration_rejected(self):
        spec = get_algorithm("greedy")
        with pytest.raises(ReproError, match="already registered"):
            register_algorithm(spec)

    def test_third_party_engine_plugs_in(self):
        def run_stub(graph, config):
            colors = [1 + (v % 2) for v in range(graph.n)]
            return EngineRun(
                algorithm="stub", colors=colors, delta=graph.max_degree(),
                palette=2, rounds=0,
            )

        register_algorithm(AlgorithmSpec(
            name="stub", summary="test stub", needs_nice=False,
            deterministic=True, palette_bound="2", run=run_stub,
        ))
        try:
            result = solve(path_graph(4), algorithm="stub")
            assert result.algorithm == "stub"
            assert result.palette == 2
        finally:
            from repro.api import registry

            del registry._REGISTRY["stub"]

    def test_nice_graph_required_by_paper_algorithms(self):
        for name in ("randomized", "deterministic", "ps", "slocal"):
            with pytest.raises(NotNiceGraphError):
                solve(cycle_graph(8), algorithm=name)

    def test_auto_policy_picks_by_instance(self):
        assert solve(torus_grid(6, 7), seed=0).algorithm == "randomized-large"
        assert (
            solve(random_regular_graph(40, 3, seed=1), seed=0).algorithm
            == "randomized-small"
        )
        clique = solve(complete_graph(5))
        assert clique.algorithm == "components"
        assert clique.palette == 5
        assert clique.stats["component_families"] == {"clique": 1}


class TestSolveMatchesLegacy:
    """solve() is bit-identical to the pre-facade entry points."""

    @pytest.mark.parametrize("name", sorted(GOLDEN_GRAPHS))
    @pytest.mark.parametrize("seed", [0, 1])
    def test_randomized_golden_seeds(self, name, seed):
        graph = GOLDEN_GRAPHS[name]()
        facade = solve(graph, algorithm="randomized", seed=seed)
        legacy = delta_color(graph, seed=seed)
        assert list(facade.colors) == legacy.colors
        assert facade.rounds == legacy.rounds
        assert facade.phase_rounds == legacy.phase_rounds

    def test_small_and_large_presets(self):
        cubic = random_regular_graph(80, 3, seed=2)
        facade = solve(cubic, algorithm="randomized-small", seed=2)
        legacy = delta_coloring_small_delta(cubic, seed=2)
        assert list(facade.colors) == legacy.colors

        dense = random_regular_graph(80, 6, seed=2)
        facade = solve(dense, algorithm="randomized-large", seed=2)
        legacy = delta_coloring_large_delta(dense, seed=2)
        assert list(facade.colors) == legacy.colors

    def test_params_override(self):
        graph = random_regular_graph(80, 3, seed=5)
        params = RandomizedParams(dcc_radius=3, seed=5, engine="hybrid")
        facade = solve(graph, SolverConfig(algorithm="randomized", params=params))
        legacy = delta_coloring_randomized(graph, params)
        assert list(facade.colors) == legacy.colors
        assert facade.seed == 5  # recorded from the params, not the config

    def test_deterministic_and_ps(self):
        graph = random_regular_graph(80, 4, seed=3)
        assert (
            list(solve(graph, algorithm="deterministic").colors)
            == delta_coloring_deterministic(graph).colors
        )
        assert (
            list(solve(graph, algorithm="ps", seed=4).colors)
            == ps_delta_coloring(graph, seed=4).colors
        )

    def test_slocal(self):
        graph = random_regular_graph(60, 4, seed=6)
        order = list(reversed(range(graph.n)))
        facade = solve(graph, algorithm="slocal", order=order)
        legacy_colors, legacy_run = slocal_delta_coloring(graph, order=order)
        assert list(facade.colors) == legacy_colors
        assert facade.stats["write_radius"] == legacy_run.write_radius

    def test_components(self):
        graph = complete_graph(4)
        facade = solve(graph, algorithm="components", seed=0)
        legacy = color_graph(graph, seed=0)
        assert list(facade.colors) == legacy.colors
        assert facade.palette == legacy.num_colors


class TestSolveMany:
    def _batch(self):
        return [
            random_regular_graph(48, 4, seed=s) for s in range(6)
        ] + [torus_grid(6, 7)]

    def test_workers_do_not_change_results(self):
        graphs = self._batch()
        config = SolverConfig(algorithm="auto", seed=1)
        serial = solve_many(graphs, config, workers=1)
        parallel = solve_many(graphs, config, workers=4)
        assert len(serial) == len(parallel) == len(graphs)
        for a, b in zip(serial, parallel):
            assert a.colors == b.colors
            assert a.rounds == b.rounds
            assert a.algorithm == b.algorithm
            assert a.phase_rounds == b.phase_rounds

    def test_pool_reuse_matches_transient(self):
        graphs = self._batch()[:3]
        config = SolverConfig(algorithm="ps", seed=2)
        with SolverPool(workers=2) as pool:
            first = solve_many(graphs, config, pool=pool)
            second = pool.solve_many(graphs, config)
        serial = solve_many(graphs, config)
        for a, b, c in zip(first, second, serial):
            assert a.colors == b.colors == c.colors

    def test_results_in_input_order(self):
        graphs = [random_regular_graph(n, 4, seed=1) for n in (24, 48, 96)]
        results = solve_many(graphs, SolverConfig(seed=0), workers=2)
        assert [r.n for r in results] == [24, 48, 96]

    def test_observer_replays_in_parent(self):
        graphs = self._batch()[:2]
        seen: list[tuple[int, str]] = []
        calls: list[int] = [0]

        def on_phase(name, rounds, stats):
            seen.append((calls[0], name))

        config = SolverConfig(algorithm="randomized", seed=1, on_phase=on_phase)
        results = solve_many(graphs, config, workers=2)
        assert seen, "observer must fire even for pooled runs"
        phase_names = {name for _, name in seen}
        assert phase_names == set().union(
            *(set(r.phase_rounds) for r in results)
        )

    @pytest.mark.skipif(
        default_workers() < 2,
        reason="throughput speedup needs >= 2 usable CPUs",
    )
    def test_throughput_speedup_on_e2b_shapes(self):
        """solve_many(workers=4) must beat serial by >1.5× on the E2b
        quick-sweep shapes when the hardware has the cores for it."""
        import time

        graphs = [
            random_regular_graph(n, 8, seed=s)
            for s in range(2)
            for n in (512, 2048)
        ]
        config = SolverConfig(algorithm="randomized-large", seed=0, validate=False)
        with SolverPool(workers=4) as pool:
            pool.warm()
            t0 = time.perf_counter()
            parallel = solve_many(graphs, config, pool=pool)
            parallel_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        serial = solve_many(graphs, config)
        serial_s = time.perf_counter() - t0
        for a, b in zip(serial, parallel):
            assert a.colors == b.colors
        assert serial_s / parallel_s > 1.5


class TestColoringResult:
    def _result(self):
        return solve(random_regular_graph(48, 4, seed=7), seed=7)

    def test_frozen_and_immutable_colors(self):
        result = self._result()
        assert isinstance(result.colors, tuple)
        with pytest.raises(AttributeError):
            result.rounds = 0

    def test_json_round_trip(self):
        result = self._result()
        payload = json.dumps(result.as_dict())
        rebuilt = ColoringResult.from_dict(json.loads(payload))
        assert rebuilt == result

    def test_as_dict_schema(self):
        data = self._result().as_dict()
        expected_keys = {
            "algorithm", "n", "delta", "palette", "colors", "rounds",
            "phase_rounds", "phase_stats", "stats", "seed", "wall_time_s",
        }
        assert set(data) == expected_keys
        assert data["rounds"] == sum(data["phase_rounds"].values())
        assert data["palette"] == data["delta"] == 4
        assert data["seed"] == 7

    def test_num_colors_used(self):
        result = self._result()
        assert result.num_colors_used == len(set(result.colors))
        assert result.num_colors_used <= result.palette


class TestObserver:
    def test_phases_replayed_in_order_with_stats(self):
        events: list[tuple[str, int, dict]] = []
        config = SolverConfig(
            algorithm="randomized",
            seed=0,
            on_phase=lambda name, rounds, stats: events.append(
                (name, rounds, stats)
            ),
        )
        result = solve(torus_grid(6, 7), config)
        assert [name for name, _, _ in events] == list(result.phase_rounds)
        assert {name: rounds for name, rounds, _ in events} == result.phase_rounds
        by_name = {name: stats for name, _, stats in events}
        # Structural stats arrive attributed to the phase that produced them.
        assert by_name["1:dcc-detect"]["num_dccs"] == result.stats["num_dccs"]
        assert by_name["4:marking"]["t_nodes"] == result.stats["t_nodes"]

    def test_harness_uses_observer_not_internals(self):
        from repro.analysis.harness import delta_coloring_sweep

        phases: list[str] = []
        points = delta_coloring_sweep(
            [64], delta=4, seed=0, warmup=1, repeats=2,
            on_phase=lambda name, rounds, stats: phases.append(name),
        )
        assert len(points) == 1
        assert "4:marking" in phases and "9:b0" in phases
        # Exactly one event per phase per size point — warmup and repeat
        # runs must not duplicate the replay.
        assert len(phases) == len(set(phases))


class TestSolverConfig:
    def test_overrides_compose_with_config(self):
        graph = random_regular_graph(48, 4, seed=1)
        base = SolverConfig(algorithm="ps", seed=1)
        a = solve(graph, base)
        b = solve(graph, base.replace(seed=1))
        assert a.colors == b.colors
        c = solve(graph, base, seed=2)
        assert c.seed == 2

    def test_strict_is_honoured_alongside_params(self):
        """strict=True folds into an explicit params override (it only
        adds contract checks, so colors stay bit-identical)."""
        graph = random_regular_graph(60, 3, seed=4)
        params = RandomizedParams(dcc_radius=2, seed=4, engine="hybrid")
        loose = solve(graph, SolverConfig(algorithm="randomized", params=params))
        strict = solve(
            graph,
            SolverConfig(algorithm="randomized", params=params, strict=True),
        )
        assert loose.colors == strict.colors

    def test_validate_toggle(self):
        graph = random_regular_graph(48, 4, seed=1)
        # Both paths must succeed; validate=False just skips the facade
        # re-check (the engines still validate internally).
        assert solve(graph, validate=False).colors == solve(graph).colors

    def test_as_dict_omits_observer(self):
        config = SolverConfig(on_phase=lambda *a: None)
        data = config.as_dict()
        assert "on_phase" not in data
        json.dumps(data)  # JSON-safe

    def test_without_observer_is_picklable(self):
        import pickle

        config = SolverConfig(on_phase=lambda *a: None)
        pickle.dumps(config.without_observer())
