"""Tests for the Panconesi–Srinivasan baseline and centralized oracles."""

import pytest

from repro.baselines.greedy import centralized_brooks, centralized_greedy
from repro.baselines.panconesi_srinivasan import ps_delta_coloring
from repro.errors import NotNiceGraphError
from repro.graphs.generators import (
    complete_graph,
    high_girth_regular_graph,
    hypercube,
    random_nice_graph,
    random_regular_graph,
    torus_grid,
)
from repro.graphs.validation import validate_coloring


class TestPSBaseline:
    @pytest.mark.parametrize("d", [3, 4, 5])
    def test_regular_graphs(self, d):
        g = random_regular_graph(300, d, seed=d)
        result = ps_delta_coloring(g, seed=d, strict=True)
        validate_coloring(g, result.colors, max_colors=d)

    def test_torus(self):
        g = torus_grid(10, 11)
        result = ps_delta_coloring(g, seed=1, strict=True)
        validate_coloring(g, result.colors, max_colors=4)

    @pytest.mark.parametrize("seed", range(3))
    def test_irregular(self, seed):
        g = random_nice_graph(250, 4, seed=seed)
        result = ps_delta_coloring(g, seed=seed, strict=True)
        validate_coloring(g, result.colors, max_colors=4)

    def test_high_girth(self):
        g = high_girth_regular_graph(600, 3, girth=8, seed=1)
        result = ps_delta_coloring(g, seed=1, strict=True)
        validate_coloring(g, result.colors, max_colors=3)

    def test_stats(self):
        g = random_regular_graph(300, 4, seed=9)
        result = ps_delta_coloring(g, seed=9)
        assert result.stats["num_layers"] >= 1
        assert result.rounds == sum(result.phase_rounds.values())

    def test_rejects_non_nice(self):
        with pytest.raises(NotNiceGraphError):
            ps_delta_coloring(complete_graph(4))


class TestCentralizedOracles:
    @pytest.mark.parametrize("d", [3, 4, 5, 7])
    def test_brooks_regular(self, d):
        g = random_regular_graph(200, d, seed=d + 10)
        colors = centralized_brooks(g)
        validate_coloring(g, colors, max_colors=d)

    def test_brooks_torus(self):
        g = torus_grid(8, 9)
        validate_coloring(g, centralized_brooks(g), max_colors=4)

    def test_brooks_hypercube(self):
        g = hypercube(5)
        validate_coloring(g, centralized_brooks(g), max_colors=5)

    def test_brooks_rejects_clique(self):
        with pytest.raises(NotNiceGraphError):
            centralized_brooks(complete_graph(5))

    def test_greedy_uses_at_most_delta_plus_one(self):
        g = random_regular_graph(200, 5, seed=2)
        colors = centralized_greedy(g)
        validate_coloring(g, colors, max_colors=6)

    def test_greedy_respects_order(self):
        g = torus_grid(5, 5)
        colors = centralized_greedy(g, order=list(reversed(range(g.n))))
        validate_coloring(g, colors, max_colors=5)
