"""Tests for the CI perf-regression gate (scripts/check_bench_regression.py).

The gate must flag genuine per-module slowdowns while staying immune to
uniform machine-speed differences between the baseline host and the CI
runner — that calibration is the whole reason the script exists.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

SCRIPT = Path(__file__).resolve().parents[1] / "scripts" / "check_bench_regression.py"
spec = importlib.util.spec_from_file_location("check_bench_regression", SCRIPT)
cbr = importlib.util.module_from_spec(spec)
spec.loader.exec_module(cbr)


BASE = {"e1": 1.0, "e2": 2.0, "e6": 3.0, "e7": 5.0, "e9": 8.0}


class TestCompare:
    def test_identical_run_passes(self):
        regressions, _ = cbr.compare(dict(BASE), dict(BASE))
        assert regressions == []

    def test_uniform_slowdown_is_machine_speed_not_regression(self):
        slow = {k: v * 3.0 for k, v in BASE.items()}
        regressions, lines = cbr.compare(slow, dict(BASE), threshold=1.5)
        assert regressions == []
        assert any("calibration factor: 3.0" in line for line in lines)

    def test_single_module_regression_flagged(self):
        current = dict(BASE)
        current["e7"] = BASE["e7"] * 2.0
        regressions, _ = cbr.compare(current, dict(BASE), threshold=1.5)
        assert len(regressions) == 1
        assert regressions[0].startswith("e7:")

    def test_regression_on_slower_machine_still_flagged(self):
        # 2x slower machine AND one module 4x slower: only the module fails.
        current = {k: v * 2.0 for k, v in BASE.items()}
        current["e1"] = BASE["e1"] * 8.0
        regressions, _ = cbr.compare(current, dict(BASE), threshold=1.5)
        assert [r.split(":")[0] for r in regressions] == ["e1"]

    def test_fast_modules_are_not_gated(self):
        base = dict(BASE, tiny=0.05)
        current = dict(base, tiny=5.0)  # 100x on a 50ms module: noise
        regressions, lines = cbr.compare(current, base, min_seconds=0.5)
        assert regressions == []
        assert any("ungated" in line for line in lines)

    def test_new_module_without_baseline_fails_with_clear_message(self):
        current = dict(BASE, brand_new=9.9)
        regressions, _ = cbr.compare(current, dict(BASE))
        assert len(regressions) == 1
        assert regressions[0].startswith("brand_new:")
        assert "--update-baseline" in regressions[0]

    def test_module_missing_from_current_fails_with_clear_message(self):
        current = dict(BASE)
        del current["e2"]
        regressions, _ = cbr.compare(current, dict(BASE))
        assert len(regressions) == 1
        assert regressions[0].startswith("e2:")
        assert "missing from the current run" in regressions[0]

    def test_disjoint_modules_is_an_error(self):
        with pytest.raises(ValueError, match="no common modules"):
            cbr.compare({"a": 1.0}, {"b": 1.0})

    def test_speedups_never_fail(self):
        current = {k: v / 10.0 for k, v in BASE.items()}
        regressions, _ = cbr.compare(current, dict(BASE))
        assert regressions == []


class TestModuleSeconds:
    def test_extracts_ok_modules_only(self):
        doc = {"modules": {
            "a": {"seconds": 1.5, "ok": True},
            "b": {"seconds": 0.5, "ok": False},
        }}
        assert cbr.module_seconds(doc) == {"a": 1.5}

    def test_rejects_empty_documents(self):
        with pytest.raises(ValueError):
            cbr.module_seconds({})

    def test_entry_without_seconds_is_a_value_error_not_keyerror(self):
        doc = {"modules": {"a": {"ok": True}}}
        with pytest.raises(ValueError, match="no 'seconds'"):
            cbr.module_seconds(doc)


class TestMain:
    def _write(self, path: Path, modules: dict[str, float]) -> Path:
        path.write_text(json.dumps({
            "bench": "smoke",
            "modules": {
                name: {"seconds": secs, "ok": True}
                for name, secs in modules.items()
            },
        }))
        return path

    def test_end_to_end_pass_and_fail(self, tmp_path):
        baseline = self._write(tmp_path / "baseline.json", BASE)
        good = self._write(tmp_path / "good.json", {k: v * 1.1 for k, v in BASE.items()})
        assert cbr.main([
            "--current", str(good), "--baseline", str(baseline),
        ]) == 0
        bad_modules = dict(BASE)
        bad_modules["e9"] = BASE["e9"] * 4
        bad = self._write(tmp_path / "bad.json", bad_modules)
        assert cbr.main([
            "--current", str(bad), "--baseline", str(baseline),
        ]) == 1

    def test_update_baseline_writes_current(self, tmp_path):
        current = self._write(tmp_path / "current.json", BASE)
        baseline = tmp_path / "new" / "baseline.json"
        assert cbr.main([
            "--current", str(current), "--baseline", str(baseline),
            "--update-baseline",
        ]) == 0
        assert cbr.module_seconds(json.loads(baseline.read_text())) == BASE

    def test_bad_input_exits_2(self, tmp_path):
        missing = tmp_path / "nope.json"
        baseline = self._write(tmp_path / "baseline.json", BASE)
        assert cbr.main([
            "--current", str(missing), "--baseline", str(baseline),
        ]) == 2

    def test_committed_baseline_is_loadable(self):
        # The default baseline must stay a valid gate input.
        baseline = cbr.module_seconds(
            json.loads(Path(cbr.DEFAULT_BASELINE).read_text())
        )
        assert baseline, "committed baseline has no modules"
