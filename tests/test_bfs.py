"""Unit tests for BFS utilities (distances, balls, layers, assignments)."""

from repro.graphs.bfs import (
    bfs_ball,
    bfs_distances,
    bfs_levels,
    bfs_tree,
    closest_source_assignment,
    distance_layers,
    eccentricity,
)
from repro.graphs.generators import cycle_graph, path_graph, torus_grid
from repro.graphs.graph import Graph


class TestDistances:
    def test_single_source_path(self):
        g = path_graph(5)
        assert bfs_distances(g, [0]) == [0, 1, 2, 3, 4]

    def test_multi_source(self):
        g = path_graph(5)
        assert bfs_distances(g, [0, 4]) == [0, 1, 2, 1, 0]

    def test_max_depth_truncates(self):
        g = path_graph(5)
        assert bfs_distances(g, [0], max_depth=2) == [0, 1, 2, -1, -1]

    def test_allowed_set_blocks_traversal(self):
        g = path_graph(5)
        dist = bfs_distances(g, [0], allowed={0, 1, 3, 4})
        assert dist == [0, 1, -1, -1, -1]

    def test_allowed_predicate(self):
        g = path_graph(5)
        dist = bfs_distances(g, [0], allowed=lambda v: v != 2)
        assert dist[4] == -1

    def test_disallowed_source_is_skipped(self):
        g = path_graph(3)
        assert bfs_distances(g, [0], allowed={1, 2}) == [-1, -1, -1]


class TestBallsAndLevels:
    def test_ball_radius_zero(self):
        g = cycle_graph(6)
        assert bfs_ball(g, 0, 0) == [0]

    def test_ball_radius_one(self):
        g = cycle_graph(6)
        assert sorted(bfs_ball(g, 0, 1)) == [0, 1, 5]

    def test_ball_covers_graph(self):
        g = cycle_graph(6)
        assert sorted(bfs_ball(g, 0, 3)) == list(range(6))

    def test_levels_shape(self):
        g = cycle_graph(8)
        levels = bfs_levels(g, 0, 5)
        assert len(levels) == 6
        assert levels[0] == [0]
        assert len(levels[4]) == 1  # antipode
        assert levels[5] == []  # preserved trailing empty level

    def test_levels_sizes_on_torus(self):
        g = torus_grid(9, 9)
        levels = bfs_levels(g, 0, 2)
        assert len(levels[1]) == 4
        assert len(levels[2]) == 8


class TestBfsTree:
    def test_parent_structure(self):
        g = path_graph(4)
        parent, level = bfs_tree(g, 0, 3)
        assert parent[0] == 0
        assert parent[3] == 2
        assert level == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_truncation(self):
        g = path_graph(6)
        _parent, level = bfs_tree(g, 0, 2)
        assert set(level) == {0, 1, 2}


class TestLayersAndAssignment:
    def test_distance_layers_partition(self):
        g = torus_grid(7, 7)
        layers = distance_layers(g, [0])
        seen = [v for layer in layers for v in layer]
        assert sorted(seen) == list(range(g.n))
        assert layers[0] == [0]

    def test_distance_layers_max_depth(self):
        g = path_graph(10)
        layers = distance_layers(g, [0], max_depth=3)
        assert len(layers) == 4

    def test_closest_source_tiebreak_by_smaller_id(self):
        # node 2 is equidistant from sources 0 and 4 on a path
        g = path_graph(5)
        _dist, assigned = closest_source_assignment(g, [0, 4])
        assert assigned[2] == 0

    def test_closest_source_assignment_follows_bfs(self):
        g = path_graph(7)
        dist, assigned = closest_source_assignment(g, [0, 6])
        assert assigned[1] == 0 and assigned[5] == 6
        assert dist[3] == 3

    def test_assignment_respects_allowed(self):
        g = path_graph(5)
        dist, assigned = closest_source_assignment(g, [0], allowed={0, 1})
        assert assigned[3] == -1


class TestEccentricity:
    def test_path_end(self):
        assert eccentricity(path_graph(5), 0) == 4

    def test_path_middle(self):
        assert eccentricity(path_graph(5), 2) == 2

    def test_disconnected_component_only(self):
        g = Graph(4, [(0, 1), (2, 3)])
        assert eccentricity(g, 0) == 1
