"""Block decomposition tests, cross-validated against networkx."""

import random

import networkx as nx
import pytest

from repro.graphs.blocks import biconnected_components, block_cut_forest, cut_vertices
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    path_graph,
    random_gallai_tree,
)
from repro.graphs.graph import Graph


def _nx_blocks(g_nx):
    return {
        tuple(sorted(set().union(*map(set, comp))))
        for comp in map(list, nx.biconnected_component_edges(g_nx))
    }


class TestAgainstNetworkx:
    @pytest.mark.parametrize("trial", range(60))
    def test_random_gnp(self, trial):
        rng = random.Random(trial)
        n = rng.randrange(2, 40)
        p = rng.uniform(0.04, 0.5)
        g_nx = nx.gnp_random_graph(n, p, seed=trial)
        g = Graph(n, list(g_nx.edges()))
        ours = biconnected_components(g)
        assert {tuple(b) for b in ours.blocks} == _nx_blocks(g_nx)
        assert ours.cut_vertices == set(nx.articulation_points(g_nx))

    @pytest.mark.parametrize("seed", range(10))
    def test_gallai_trees(self, seed):
        g = random_gallai_tree(8, seed=seed)
        g_nx = nx.Graph(list(g.edges()))
        g_nx.add_nodes_from(range(g.n))
        ours = biconnected_components(g)
        assert {tuple(b) for b in ours.blocks} == _nx_blocks(g_nx)


class TestEdgeCases:
    def test_single_edge_is_one_block(self):
        g = Graph(2, [(0, 1)])
        d = biconnected_components(g)
        assert d.blocks == [[0, 1]]
        assert d.cut_vertices == set()

    def test_path_blocks_are_edges(self):
        g = path_graph(5)
        d = biconnected_components(g)
        assert len(d.blocks) == 4
        assert all(len(b) == 2 for b in d.blocks)
        assert d.cut_vertices == {1, 2, 3}

    def test_cycle_is_single_block(self):
        d = biconnected_components(cycle_graph(7))
        assert len(d.blocks) == 1
        assert len(d.blocks[0]) == 7
        assert d.cut_vertices == set()

    def test_clique_is_single_block(self):
        d = biconnected_components(complete_graph(6))
        assert len(d.blocks) == 1

    def test_isolated_vertices_have_no_blocks(self):
        g = Graph(3, [(0, 1)])
        d = biconnected_components(g)
        assert d.blocks_of_node[2] == []

    def test_bowtie_cut_vertex(self):
        # two triangles sharing node 2
        g = Graph(5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)])
        d = biconnected_components(g)
        assert d.cut_vertices == {2}
        assert len(d.blocks) == 2
        assert d.blocks_of_node[2] == [0, 1] or d.blocks_of_node[2] == [1, 0]

    def test_cut_vertices_helper(self):
        g = path_graph(4)
        assert cut_vertices(g) == {1, 2}

    def test_block_cut_forest(self):
        g = Graph(5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)])
        blocks, tree_adj = block_cut_forest(g)
        assert len(blocks) == 2
        for block_id, cuts in tree_adj.items():
            assert cuts == [2]
