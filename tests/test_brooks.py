"""Tests for the distributed Brooks' theorem repair (Theorem 5)."""

import random

import pytest

from repro.core.brooks import default_fix_radius, fix_uncolored_node
from repro.core.degree_choosable import degree_list_color
from repro.errors import AlgorithmContractError, InfeasibleListColoringError
from repro.graphs.generators import (
    hypercube,
    random_nice_graph,
    random_regular_graph,
    torus_grid,
)
from repro.graphs.validation import UNCOLORED, validate_coloring
from repro.local.rounds import RoundLedger


def _color_minus_v(graph, v, delta, rng, glauber_steps=None):
    """Δ-color G−v from scratch (the true Theorem 5 precondition), then
    randomize with Glauber dynamics to diversify the neighbourhood."""
    colors = [UNCOLORED] * graph.n
    rest = [u for u in range(graph.n) if u != v]
    sub, originals = graph.subgraph(rest)
    for component in sub.connected_components():
        comp_orig = sorted(originals[i] for i in component)
        sub2, orig2 = graph.subgraph(comp_orig)
        lists = [set(range(1, delta + 1)) for _ in range(sub2.n)]
        try:
            assignment = degree_list_color(sub2, lists)
        except InfeasibleListColoringError:
            return None
        for i, u in enumerate(orig2):
            colors[u] = assignment[i]
    steps = glauber_steps if glauber_steps is not None else 6 * graph.n
    for _ in range(steps):
        u = rng.randrange(graph.n)
        if u == v:
            continue
        used = {colors[w] for w in graph.adj[u] if w != v and colors[w] != UNCOLORED}
        options = [c for c in range(1, delta + 1) if c not in used and c != colors[u]]
        if options:
            colors[u] = rng.choice(options)
    return colors


class TestBasicRepair:
    def test_rejects_colored_node(self):
        g = torus_grid(5, 5)
        colors = [1] * g.n
        with pytest.raises(AlgorithmContractError):
            fix_uncolored_node(g, colors, 0, 4)

    def test_free_color_case(self):
        g = torus_grid(5, 5)
        colors = degree_list_color(g, [set(range(1, 5)) for _ in range(g.n)])
        colors[7] = UNCOLORED
        result = fix_uncolored_node(g, colors, 7, 4, ledger=RoundLedger())
        validate_coloring(g, colors, max_colors=4)
        assert result.mode == "free"
        assert result.recolored == []


class TestScratchRepair:
    @pytest.mark.parametrize("d,n", [(3, 200), (4, 300), (5, 200)])
    def test_random_regular_many_seeds(self, d, n):
        for seed in range(8):
            g = random_regular_graph(n, d, seed=seed)
            rng = random.Random(seed * 13 + 1)
            v = rng.randrange(g.n)
            colors = _color_minus_v(g, v, d, rng)
            if colors is None:
                continue
            ledger = RoundLedger()
            result = fix_uncolored_node(g, colors, v, d, ledger=ledger)
            validate_coloring(g, colors, max_colors=d)
            assert result.rounds == ledger.total_rounds
            assert result.radius <= default_fix_radius(g.n, d)

    def test_torus(self):
        g = torus_grid(9, 9)
        rng = random.Random(5)
        for trial in range(6):
            v = rng.randrange(g.n)
            colors = _color_minus_v(g, v, 4, rng)
            fix_uncolored_node(g, colors, v, 4, ledger=RoundLedger())
            validate_coloring(g, colors, max_colors=4)

    def test_hypercube(self):
        g = hypercube(4)
        rng = random.Random(6)
        for trial in range(6):
            v = rng.randrange(g.n)
            colors = _color_minus_v(g, v, 4, rng)
            if colors is None:
                continue
            fix_uncolored_node(g, colors, v, 4, ledger=RoundLedger())
            validate_coloring(g, colors, max_colors=4)

    @pytest.mark.parametrize("seed", range(5))
    def test_irregular(self, seed):
        g = random_nice_graph(150, 5, seed=seed)
        rng = random.Random(seed)
        v = rng.randrange(g.n)
        colors = _color_minus_v(g, v, 5, rng)
        if colors is None:
            pytest.skip("component infeasible without v")
        result = fix_uncolored_node(g, colors, v, 5, ledger=RoundLedger())
        validate_coloring(g, colors, max_colors=5)
        # irregular graphs have deficient nodes: repairs stay very local
        assert result.radius <= default_fix_radius(g.n, 5)


class TestRadiusBound:
    """Theorem 5's quantitative claim: repairs fit in 2·log_{Δ-1} n."""

    def test_radius_bound_over_many_repairs(self):
        bound = default_fix_radius(400, 3)
        worst = 0
        for seed in range(10):
            g = random_regular_graph(400, 3, seed=seed + 50)
            rng = random.Random(seed)
            v = rng.randrange(g.n)
            colors = _color_minus_v(g, v, 3, rng)
            if colors is None:
                continue
            result = fix_uncolored_node(g, colors, v, 3, ledger=RoundLedger())
            validate_coloring(g, colors, max_colors=3)
            worst = max(worst, result.radius)
        assert worst <= bound

    def test_default_radius_formula(self):
        # 2*ceil(log_3(1000)) + 2 = 2*7+2
        assert default_fix_radius(1000, 4) == 16
        assert default_fix_radius(2, 4) >= 2


class TestMultipleUncoloredNodes:
    """The deterministic algorithm repairs many far-apart nodes; each fix
    must tolerate other uncolored nodes outside its ball."""

    def test_two_far_apart_nodes(self):
        g = random_regular_graph(500, 4, seed=77)
        base = degree_list_color(g, [set(range(1, 5)) for _ in range(g.n)])
        from repro.graphs.bfs import bfs_distances

        v = 0
        dist = bfs_distances(g, [v])
        far = max(range(g.n), key=lambda u: dist[u])
        colors = list(base)
        colors[v] = UNCOLORED
        colors[far] = UNCOLORED
        fix_uncolored_node(g, colors, v, 4, ledger=RoundLedger())
        fix_uncolored_node(g, colors, far, 4, ledger=RoundLedger())
        validate_coloring(g, colors, max_colors=4)
