"""Tests for the command-line interface."""

import pytest

from repro.cli import load_edge_list, main
from repro.graphs.generators import random_regular_graph
from repro.graphs.validation import validate_coloring


@pytest.fixture
def edge_file(tmp_path):
    graph = random_regular_graph(60, 3, seed=4)
    path = tmp_path / "edges.txt"
    path.write_text(
        "# a comment line\n"
        + "\n".join(f"{u} {v}" for u, v in graph.edges())
        + "\n"
    )
    return path, graph


class TestLoadEdgeList:
    def test_roundtrip(self, edge_file):
        path, graph = edge_file
        loaded, original_ids = load_edge_list(str(path))
        assert loaded.n == graph.n
        assert loaded.num_edges == graph.num_edges
        assert original_ids == list(range(graph.n))

    def test_arbitrary_ids_compacted(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("100 200\n200 300\n300 100\n")
        graph, original_ids = load_edge_list(str(path))
        assert graph.n == 3 and graph.num_edges == 3
        assert original_ids == [100, 200, 300]

    def test_duplicates_and_self_loops_dropped(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 1\n1 0\n1 1\n1 2\n")
        graph, _ = load_edge_list(str(path))
        assert graph.num_edges == 2

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 1 2\n")
        with pytest.raises(SystemExit):
            load_edge_list(str(path))


class TestColorCommand:
    def _read_colors(self, output_path, graph):
        colors = [0] * graph.n
        for line in output_path.read_text().splitlines():
            node, color = map(int, line.split())
            colors[node] = color
        return colors

    def test_auto(self, edge_file, tmp_path):
        path, graph = edge_file
        out = tmp_path / "colors.txt"
        assert main(["color", str(path), "-o", str(out)]) == 0
        colors = self._read_colors(out, graph)
        validate_coloring(graph, colors, max_colors=3)

    @pytest.mark.parametrize("algorithm", ["randomized", "deterministic", "ps"])
    def test_explicit_algorithms(self, edge_file, tmp_path, algorithm):
        path, graph = edge_file
        out = tmp_path / "colors.txt"
        assert main(["color", str(path), "--algorithm", algorithm, "-o", str(out)]) == 0
        colors = self._read_colors(out, graph)
        validate_coloring(graph, colors, max_colors=3)

    def test_stdout_output(self, edge_file, capsys):
        path, graph = edge_file
        assert main(["color", str(path)]) == 0
        captured = capsys.readouterr()
        assert len(captured.out.splitlines()) == graph.n


class TestInfoCommand:
    def test_profile(self, edge_file, capsys):
        path, _graph = edge_file
        assert main(["info", str(path)]) == 0
        out = capsys.readouterr().out
        assert "max degree Δ : 3" in out
        assert "nice         : True" in out
