"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import load_edge_list, main
from repro.errors import GraphConstructionError
from repro.graphs.generators import random_regular_graph
from repro.graphs.validation import validate_coloring


@pytest.fixture
def edge_file(tmp_path):
    graph = random_regular_graph(60, 3, seed=4)
    path = tmp_path / "edges.txt"
    path.write_text(
        "# a comment line\n"
        + "\n".join(f"{u} {v}" for u, v in graph.edges())
        + "\n"
    )
    return path, graph


class TestLoadEdgeList:
    def test_roundtrip(self, edge_file):
        path, graph = edge_file
        loaded, original_ids = load_edge_list(str(path))
        assert loaded.n == graph.n
        assert loaded.num_edges == graph.num_edges
        assert original_ids == list(range(graph.n))

    def test_arbitrary_ids_compacted(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("100 200\n200 300\n300 100\n")
        graph, original_ids = load_edge_list(str(path))
        assert graph.n == 3 and graph.num_edges == 3
        assert original_ids == [100, 200, 300]

    def test_trailing_comment_allowed(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 1  # the first edge\n1 2\n\n# done\n")
        graph, _ = load_edge_list(str(path))
        assert graph.n == 3 and graph.num_edges == 2

    def test_self_loop_rejected(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 1\n1 1\n")
        with pytest.raises(GraphConstructionError, match=r"edges.txt:2: self-loop"):
            load_edge_list(str(path))

    def test_duplicate_edge_rejected(self, tmp_path):
        path = tmp_path / "edges.txt"
        # Reversed orientation is still the same undirected edge.
        path.write_text("0 1\n1 2\n1 0\n")
        with pytest.raises(
            GraphConstructionError, match=r"edges.txt:3: duplicate edge 1 0"
        ):
            load_edge_list(str(path))

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 1 2\n")
        with pytest.raises(GraphConstructionError, match=r"expected 'u v'"):
            load_edge_list(str(path))

    def test_non_integer_ids_rejected(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("a b\n")
        with pytest.raises(GraphConstructionError, match="must be integers"):
            load_edge_list(str(path))

    def test_main_reports_bad_file_as_exit_2(self, tmp_path, capsys):
        path = tmp_path / "edges.txt"
        path.write_text("3 3\n")
        assert main(["color", str(path)]) == 2
        assert "self-loop" in capsys.readouterr().err


class TestColorCommand:
    def _read_colors(self, output_path, graph):
        colors = [0] * graph.n
        for line in output_path.read_text().splitlines():
            node, color = map(int, line.split())
            colors[node] = color
        return colors

    def test_auto(self, edge_file, tmp_path):
        path, graph = edge_file
        out = tmp_path / "colors.txt"
        assert main(["color", str(path), "-o", str(out)]) == 0
        colors = self._read_colors(out, graph)
        validate_coloring(graph, colors, max_colors=3)

    @pytest.mark.parametrize(
        "algorithm",
        ["randomized", "randomized-small", "deterministic", "ps", "slocal"],
    )
    def test_explicit_algorithms(self, edge_file, tmp_path, algorithm):
        path, graph = edge_file
        out = tmp_path / "colors.txt"
        assert main(["color", str(path), "--algorithm", algorithm, "-o", str(out)]) == 0
        colors = self._read_colors(out, graph)
        validate_coloring(graph, colors, max_colors=3)

    def test_greedy_uses_at_most_delta_plus_one(self, edge_file, tmp_path):
        path, graph = edge_file
        out = tmp_path / "colors.txt"
        assert main(["color", str(path), "--algorithm", "greedy", "-o", str(out)]) == 0
        colors = self._read_colors(out, graph)
        validate_coloring(graph, colors, max_colors=4)

    def test_stdout_output(self, edge_file, capsys):
        path, graph = edge_file
        assert main(["color", str(path)]) == 0
        captured = capsys.readouterr()
        assert len(captured.out.splitlines()) == graph.n

    def test_json_output(self, edge_file, tmp_path):
        path, graph = edge_file
        out = tmp_path / "result.json"
        assert main(
            ["color", str(path), "--json", "--seed", "3", "-o", str(out)]
        ) == 0
        payload = json.loads(out.read_text())
        assert payload["n"] == graph.n
        assert payload["algorithm"] == "randomized-small"
        assert payload["seed"] == 3
        assert payload["palette"] == 3
        assert payload["node_ids"] == list(range(graph.n))
        assert len(payload["colors"]) == graph.n
        validate_coloring(graph, payload["colors"], max_colors=3)
        assert payload["rounds"] == sum(payload["phase_rounds"].values())
        assert payload["wall_time_s"] >= 0

    def test_json_matches_library_result(self, edge_file, capsys):
        """--json is ColoringResult.as_dict(), not a bespoke schema."""
        from repro.api import solve

        path, graph = edge_file
        assert main(["color", str(path), "--json", "--seed", "1"]) == 0
        payload = json.loads(capsys.readouterr().out)
        expected = solve(graph, algorithm="auto", seed=1).as_dict()
        for key in ("algorithm", "colors", "rounds", "palette", "phase_rounds"):
            assert payload[key] == expected[key]


class TestInfoCommand:
    def test_profile(self, edge_file, capsys):
        path, _graph = edge_file
        assert main(["info", str(path)]) == 0
        out = capsys.readouterr().out
        assert "max degree Δ : 3" in out
        assert "nice         : True" in out
