"""Sync/async client API parity, pinned structurally and behaviorally.

:class:`ColoringClient` and :class:`AsyncColoringClient` are two
transports for one API: every public verb must take the same parameters,
in the same kinds (the optional knobs keyword-only on both), with the
same defaults.  The structural half is asserted over
``inspect.signature`` so any future drift — a renamed kwarg, a default
changed on one flavour only — fails here before it ships; the
behavioral half runs the same verbs against one live server through
both flavours and compares the replies.
"""

from __future__ import annotations

import asyncio
import inspect
import threading

import pytest

from repro.graphs.generators import random_regular_graph
from repro.service import AsyncColoringClient, ColoringClient, ColoringServer

VERBS = ("solve", "update", "stats", "metrics", "ping")


def _signature(cls, name):
    return inspect.signature(getattr(cls, name))


class TestSignatureParity:
    @pytest.mark.parametrize("verb", VERBS)
    def test_parameters_match_exactly(self, verb):
        sync_params = _signature(ColoringClient, verb).parameters
        async_params = _signature(AsyncColoringClient, verb).parameters
        assert list(sync_params) == list(async_params)
        for name in sync_params:
            sync_p, async_p = sync_params[name], async_params[name]
            assert sync_p.kind == async_p.kind, f"{verb}({name}) kind differs"
            assert sync_p.default == async_p.default, (
                f"{verb}({name}) default differs"
            )

    def test_optional_knobs_are_keyword_only(self):
        # the uniform surface: transport-independent call sites can pass
        # these only by name, so neither flavour can reorder them apart
        for cls in (ColoringClient, AsyncColoringClient):
            update = _signature(cls, "update").parameters
            assert update["fallback_graph"].kind is inspect.Parameter.KEYWORD_ONLY
            assert update["backend"].kind is inspect.Parameter.KEYWORD_ONLY
            metrics = _signature(cls, "metrics").parameters
            assert metrics["format"].kind is inspect.Parameter.KEYWORD_ONLY

    def test_async_flavour_is_actually_async(self):
        for verb in VERBS:
            assert inspect.iscoroutinefunction(getattr(AsyncColoringClient, verb))
            assert not inspect.iscoroutinefunction(getattr(ColoringClient, verb))


class TestBehavioralParity:
    @pytest.fixture
    def server(self):
        """One server on its own loop thread; yields the bound port."""
        started = threading.Event()
        box = {}

        def main():
            async def run():
                server = ColoringServer(port=0)
                _, port = await server.start()
                box["port"] = port
                started.set()
                await box["stop"].wait()
                await server.shutdown(drain_s=2.0)

            loop = asyncio.new_event_loop()
            box["loop"] = loop
            box["stop"] = asyncio.Event()
            loop.run_until_complete(run())
            loop.close()

        thread = threading.Thread(target=main, daemon=True)
        thread.start()
        assert started.wait(30.0)
        yield box["port"]
        box["loop"].call_soon_threadsafe(box["stop"].set)
        thread.join(timeout=30.0)

    def test_same_verbs_same_replies(self, server):
        graph = random_regular_graph(24, 3, seed=4)
        delta = [next(iter(graph.edges()))]

        with ColoringClient(port=server) as sync_client:
            assert sync_client.ping() is True
            solved = sync_client.solve(graph, seed=1)
            updated = sync_client.update(
                solved.fingerprint, edges_removed=delta, backend="dynamic"
            )
            sync_stats = sync_client.stats()
            sync_metrics = sync_client.metrics()
            sync_text = sync_client.metrics(format="prometheus")

        async def async_side():
            async with AsyncColoringClient(port=server) as client:
                assert await client.ping() is True
                solved2 = await client.solve(graph, seed=1)
                updated2 = await client.update(
                    solved2.fingerprint, edges_removed=delta, backend="dynamic"
                )
                stats = await client.stats()
                metrics = await client.metrics()
                text = await client.metrics(format="prometheus")
                return solved2, updated2, stats, metrics, text

        solved2, updated2, async_stats, async_metrics, async_text = asyncio.run(
            async_side()
        )
        # same digests, bit-identical results, on both transports
        assert solved2.fingerprint == solved.fingerprint
        assert solved2.result.content_digest() == solved.result.content_digest()
        assert updated2.fingerprint == updated.fingerprint
        assert updated2.result.content_digest() == updated.result.content_digest()
        # same reply shapes for the introspection verbs
        assert set(async_stats) == set(sync_stats)
        assert set(async_metrics) == set(sync_metrics)
        assert async_text.splitlines()[0] == sync_text.splitlines()[0]
