"""Tests for the journaling color store (:class:`repro.core.ColorStore`).

The fallback-pair contract: the numpy backend and the pure-Python
backend behave identically through the whole public surface — item
access, transactions, views, diffing.  Every test here runs against
both (the numpy half skips on numpy-free environments).
"""

from __future__ import annotations

import pytest

from repro.core.colorstore import ColorStore

try:
    import numpy as np
except Exception:  # pragma: no cover
    np = None

BACKENDS = ["python"] + (["numpy"] if np is not None else [])


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


class TestSequenceProtocol:
    def test_len_get_set_iter(self, backend):
        store = ColorStore([3, 1, 4, 1, 5], backend=backend)
        assert len(store) == 5
        assert store[2] == 4
        store[2] = 9
        assert store[2] == 9
        assert list(store) == [3, 1, 9, 1, 5]

    def test_items_are_plain_python_ints(self, backend):
        # numpy scalars break JSON round-trips and tuple equality pins;
        # the store must never leak them.
        store = ColorStore([1, 2], backend=backend)
        assert type(store[0]) is int
        assert all(type(c) is int for c in store)
        assert all(type(c) is int for c in store.to_list())

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            ColorStore([1], backend="fortran")


class TestTransactions:
    def test_commit_reports_only_net_changes(self, backend):
        store = ColorStore([1, 2, 3, 4], backend=backend)
        store.begin()
        store[0] = 7
        store[1] = 9
        store[1] = 2  # restored: not a net change
        store[3] = 4  # written with its own value: not a change
        assert store.commit() == [0]
        assert store.to_list() == [7, 2, 3, 4]

    def test_rollback_restores_first_written_values(self, backend):
        store = ColorStore([1, 2, 3], backend=backend)
        store.begin()
        store[0] = 5
        store[0] = 6  # journal keeps the first old value, 1
        store[2] = 8
        store.rollback()
        assert store.to_list() == [1, 2, 3]

    def test_transaction_misuse_raises(self, backend):
        store = ColorStore([1], backend=backend)
        with pytest.raises(RuntimeError):
            store.commit()
        with pytest.raises(RuntimeError):
            store.rollback()
        store.begin()
        with pytest.raises(RuntimeError):
            store.begin()
        assert store.in_transaction
        store.commit()
        assert not store.in_transaction

    def test_writes_outside_transaction_do_not_journal(self, backend):
        store = ColorStore([1, 2], backend=backend)
        store[0] = 9
        store.begin()
        assert store.commit() == []
        assert store.to_list() == [9, 2]


class TestBulkAccess:
    def test_view_reads_current_state(self, backend):
        store = ColorStore([1, 2, 3], backend=backend)
        view = store.view()
        assert len(view) == 3
        assert list(view) == [1, 2, 3]
        assert view[1] == 2

    def test_numpy_view_is_read_only_and_zero_copy(self):
        if np is None:
            pytest.skip("numpy unavailable")
        store = ColorStore([1, 2, 3], backend="numpy")
        view = store.view()
        with pytest.raises(ValueError):
            view[0] = 9
        store[0] = 9
        # zero-copy: the view tracks the buffer
        assert view[0] == 9

    def test_replace_swaps_whole_coloring(self, backend):
        store = ColorStore([1, 2, 3], backend=backend)
        store.begin()
        store[0] = 9
        store.replace([4, 5, 6])
        assert not store.in_transaction
        assert store.to_list() == [4, 5, 6]

    def test_diff_count(self, backend):
        store = ColorStore([1, 2, 3, 4], backend=backend)
        assert store.diff_count([1, 2, 3, 4]) == 0
        assert store.diff_count([1, 9, 3, 9]) == 2
        assert store.diff_count((9, 9, 9, 9)) == 4


@pytest.mark.skipif(np is None, reason="numpy unavailable")
def test_backends_pinned_equivalent():
    """Drive both backends through an identical randomized script and
    assert every observable output matches, step for step."""
    import random

    rng = random.Random(0)
    seed = [rng.randrange(1, 9) for _ in range(64)]
    a = ColorStore(seed, backend="numpy")
    b = ColorStore(seed, backend="python")
    for _ in range(50):
        action = rng.randrange(4)
        if action == 0:
            v, c = rng.randrange(64), rng.randrange(1, 9)
            a[v] = c
            b[v] = c
        elif action == 1 and not a.in_transaction:
            a.begin()
            b.begin()
        elif action == 2 and a.in_transaction:
            assert a.commit() == b.commit()
        elif action == 3 and a.in_transaction:
            a.rollback()
            b.rollback()
        assert a.to_list() == b.to_list()
        assert a.in_transaction == b.in_transaction
        other = [rng.randrange(1, 9) for _ in range(64)]
        assert a.diff_count(other) == b.diff_count(other)
