"""Property tests: the CSR ``Graph`` agrees with a naive reference.

The CSR rewrite of :mod:`repro.graphs.graph` must be observationally
identical to the obvious adjacency-structure it replaced.  A deliberately
dumb reference implementation (dict of sorted neighbour lists, edge set of
frozensets) is compared against ``Graph`` on degrees, edge sets,
``has_edge``, induced ``subgraph``, ``subgraph_view`` and
``connected_components`` across seeded-random graphs and the structured
extremes (star, clique, empty, isolated nodes).
"""

from __future__ import annotations

import random

import pytest

from repro.errors import GraphError
from repro.graphs.graph import Graph, GraphBuilder


class NaiveGraph:
    """Reference implementation: dict-of-sets, no cleverness anywhere."""

    def __init__(self, n: int, edges: list[tuple[int, int]]):
        self.n = n
        self.edge_set = {frozenset(e) for e in edges}
        self.nbrs: dict[int, set[int]] = {v: set() for v in range(n)}
        for u, v in edges:
            self.nbrs[u].add(v)
            self.nbrs[v].add(u)

    def degree(self, v: int) -> int:
        return len(self.nbrs[v])

    def degrees(self) -> list[int]:
        return [len(self.nbrs[v]) for v in range(self.n)]

    def max_degree(self) -> int:
        return max(self.degrees(), default=0)

    def min_degree(self) -> int:
        return min(self.degrees(), default=0)

    def has_edge(self, u: int, v: int) -> bool:
        return frozenset((u, v)) in self.edge_set

    def components(self) -> list[list[int]]:
        seen: set[int] = set()
        out = []
        for start in range(self.n):
            if start in seen:
                continue
            stack, comp = [start], []
            seen.add(start)
            while stack:
                u = stack.pop()
                comp.append(u)
                for w in self.nbrs[u]:
                    if w not in seen:
                        seen.add(w)
                        stack.append(w)
            out.append(sorted(comp))
        return out

    def induced(self, nodes: list[int]) -> "NaiveGraph":
        keep = sorted(set(nodes))
        index = {v: i for i, v in enumerate(keep)}
        edges = [
            (index[u], index[v])
            for u, v in (tuple(sorted(e)) for e in self.edge_set)
            if u in index and v in index
        ]
        return NaiveGraph(len(keep), edges)


def random_edge_list(n: int, p: float, rng: random.Random) -> list[tuple[int, int]]:
    return [(u, v) for u in range(n) for v in range(u + 1, n) if rng.random() < p]


def case_graphs() -> list[tuple[str, int, list[tuple[int, int]]]]:
    cases: list[tuple[str, int, list[tuple[int, int]]]] = [
        ("empty-0", 0, []),
        ("empty-7", 7, []),
        ("single-edge", 2, [(0, 1)]),
        ("star-9", 9, [(0, i) for i in range(1, 9)]),
        ("clique-8", 8, [(i, j) for i in range(8) for j in range(i + 1, 8)]),
        ("isolated-mix", 10, [(2, 5), (5, 9)]),
    ]
    for seed in range(12):
        rng = random.Random(seed)
        n = rng.randrange(2, 40)
        p = rng.choice([0.05, 0.15, 0.4, 0.8])
        edges = random_edge_list(n, p, rng)
        rng.shuffle(edges)
        cases.append((f"random-{seed}", n, edges))
    return cases


CASES = case_graphs()
CASE_IDS = [name for name, _, _ in CASES]


@pytest.mark.parametrize("name,n,edges", CASES, ids=CASE_IDS)
class TestCsrAgreesWithNaive:
    def test_degrees_and_counts(self, name, n, edges):
        graph = Graph(n, edges)
        ref = NaiveGraph(n, edges)
        assert graph.n == ref.n
        assert graph.num_edges == len(ref.edge_set)
        assert graph.degrees() == ref.degrees()
        assert graph.max_degree() == ref.max_degree()
        assert graph.min_degree() == ref.min_degree()
        for v in range(n):
            assert graph.degree(v) == ref.degree(v)
            assert sorted(graph.neighbors(v)) == sorted(ref.nbrs[v])
            assert sorted(graph.neighbors_csr(v)) == sorted(ref.nbrs[v])

    def test_edges_and_has_edge(self, name, n, edges):
        graph = Graph(n, edges)
        ref = NaiveGraph(n, edges)
        assert {frozenset(e) for e in graph.edges()} == ref.edge_set
        for u in range(n):
            for v in range(n):
                if u != v:
                    assert graph.has_edge(u, v) == ref.has_edge(u, v)

    def test_connected_components(self, name, n, edges):
        graph = Graph(n, edges)
        ref = NaiveGraph(n, edges)
        assert graph.connected_components() == sorted(ref.components())
        assert graph.is_connected() == (len(ref.components()) <= 1)

    def test_subgraph(self, name, n, edges):
        graph = Graph(n, edges)
        ref = NaiveGraph(n, edges)
        rng = random.Random(sum(map(ord, name)) * 31 + n)
        for _ in range(3):
            keep = [v for v in range(n) if rng.random() < 0.6]
            sub, originals = graph.subgraph(keep)
            naive_sub = ref.induced(keep)
            assert originals == sorted(set(keep))
            assert sub.n == naive_sub.n
            assert sub.degrees() == naive_sub.degrees()
            assert {frozenset(e) for e in sub.edges()} == naive_sub.edge_set

    def test_subgraph_view(self, name, n, edges):
        graph = Graph(n, edges)
        ref = NaiveGraph(n, edges)
        rng = random.Random(sum(map(ord, name)) * 17 + n + 1)
        keep = [v for v in range(n) if rng.random() < 0.5]
        view = graph.subgraph_view(keep)
        keep_set = set(keep)
        for v in keep:
            assert view.degree(v) == len(ref.nbrs[v] & keep_set)
            assert sorted(view.neighbors(v)) == sorted(ref.nbrs[v] & keep_set)
        assert sorted(view.nodes()) == sorted(keep_set)
        assert view.num_nodes() == len(keep_set)
        naive_sub = ref.induced(keep)
        assert view.num_edges() == len(naive_sub.edge_set)
        sub, originals = view.materialize()
        assert originals == sorted(keep_set)
        assert {frozenset(e) for e in sub.edges()} == naive_sub.edge_set

    def test_builder_and_unchecked_match_checked(self, name, n, edges):
        graph = Graph(n, edges)
        unchecked = Graph.from_edges_unchecked(n, edges)
        builder = GraphBuilder(n)
        for u, v in edges:
            builder.add_edge(u, v)
        built = builder.build()
        for other in (unchecked, built):
            assert other.n == graph.n
            assert other.num_edges == graph.num_edges
            assert other.adj == graph.adj  # identical insertion order too

    def test_from_adjacency_roundtrip(self, name, n, edges):
        graph = Graph(n, edges)
        again = Graph.from_adjacency(graph.adj)
        assert again.degrees() == graph.degrees()
        assert {frozenset(e) for e in again.edges()} == {
            frozenset(e) for e in graph.edges()
        }


class TestValidationStillRejects:
    """The unchecked fast paths must not have weakened the public API."""

    def test_duplicate_edge_rejected(self):
        with pytest.raises(GraphError, match="duplicate"):
            Graph(4, [(0, 1), (2, 3), (1, 0)])

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError, match="self-loop"):
            Graph(3, [(1, 1)])

    def test_out_of_range_rejected(self):
        with pytest.raises(GraphError, match="out of range"):
            Graph(3, [(0, 3)])

    def test_from_adjacency_asymmetric_rejected(self):
        with pytest.raises(GraphError, match="not symmetric"):
            Graph.from_adjacency([[1], []])
        with pytest.raises(GraphError, match="not symmetric"):
            # symmetric edge plus a phantom one-sided entry
            Graph.from_adjacency([[1, 2], [0], [0, 0]])

    def test_builder_rejects_self_loop(self):
        builder = GraphBuilder(3)
        with pytest.raises(GraphError, match="self-loop"):
            builder.add_edge(2, 2)

    def test_builder_dedup(self):
        builder = GraphBuilder(3, dedup=True)
        assert builder.add_edge(0, 1)
        assert not builder.add_edge(1, 0)
        assert builder.has_edge(0, 1)
        assert not builder.has_edge(0, 2)
        assert builder.build().num_edges == 1

    def test_subgraph_view_mask_length_checked(self):
        graph = Graph(3, [(0, 1)])
        with pytest.raises(GraphError, match="mask length"):
            graph.subgraph_view(bytearray(2))


class TestVectorizedPathParity:
    """The numpy/scipy fast paths must be bit-identical to the pure-Python
    fallbacks — including the shapes that once broke them."""

    def test_linial_with_trailing_isolated_nodes(self):
        # Regression: the chunked reduceat once clamped a trailing
        # zero-degree node's segment sentinel, stealing the previous
        # node's last edge comparison.
        import repro.primitives.linial as linial_mod
        from repro.graphs.generators import random_graph_with_max_degree
        from repro.local.rounds import RoundLedger

        for seed in range(4):
            base = random_graph_with_max_degree(590, 7, 3.5, seed=seed)
            graph = Graph(600, list(base.edges()))  # nodes 590..599 isolated
            vectorized = linial_mod.linial_coloring(graph, RoundLedger())
            real = linial_mod._reduce_round_vectorized
            linial_mod._reduce_round_vectorized = lambda *a, **k: None
            try:
                scalar = linial_mod.linial_coloring(graph, RoundLedger())
            finally:
                linial_mod._reduce_round_vectorized = real
            assert vectorized.colors == scalar.colors
            assert vectorized.palette == scalar.palette

    def test_dcc_detection_paths_agree_on_multi_block_cut_vertex(self):
        # Node 1 sits in two qualifying blocks (two C4s) with a pendant
        # tree hanging off the core — the shape where block discovery
        # order is delicate.  Both detection paths must pick the same one.
        import repro.core.dcc as dcc_mod

        gadget = [
            (1, 5), (5, 6), (6, 7), (7, 1),
            (1, 2), (2, 3), (3, 4), (4, 1),
            (0, 6),
        ]
        graph = Graph(300, gadget)  # large enough for the vectorized gate
        vec = dcc_mod.detect_dccs(graph, 3)
        real = dcc_mod._vectorized_ball_blocks
        dcc_mod._vectorized_ball_blocks = lambda *a, **k: None
        try:
            fallback = dcc_mod.detect_dccs(graph, 3)
        finally:
            dcc_mod._vectorized_ball_blocks = real
        assert vec.dccs == fallback.dccs
        assert vec.selected_by == fallback.selected_by
        assert vec.nodes_in_dccs == fallback.nodes_in_dccs
        assert vec.dccs  # the gadget's DCCs are found at all

    def test_dcc_detection_paths_agree_on_random_graphs(self):
        import repro.core.dcc as dcc_mod
        from repro.graphs.generators import random_regular_graph

        for seed in range(3):
            graph = random_regular_graph(400, 6, seed=seed)
            vec = dcc_mod.detect_dccs(graph, 2)
            real = dcc_mod._vectorized_ball_blocks
            dcc_mod._vectorized_ball_blocks = lambda *a, **k: None
            try:
                fallback = dcc_mod.detect_dccs(graph, 2)
            finally:
                dcc_mod._vectorized_ball_blocks = real
            assert vec.dccs == fallback.dccs
            assert vec.selected_by == fallback.selected_by

    def test_dcc_batched_peel_agrees_on_dcc_rich_graphs(self):
        # The torus is DCCs-everywhere: every ball survives the cheap
        # rejects, so the batched sparse 2-core peel (not just the skip
        # logic) is what must match the sequential per-ball peel.
        import repro.core.dcc as dcc_mod
        from repro.graphs.generators import torus_grid

        for radius in (2, 3):
            graph = torus_grid(20, 20)
            vec = dcc_mod.detect_dccs(graph, radius)
            real = dcc_mod._vectorized_ball_blocks
            dcc_mod._vectorized_ball_blocks = lambda *a, **k: None
            try:
                fallback = dcc_mod.detect_dccs(graph, radius)
            finally:
                dcc_mod._vectorized_ball_blocks = real
            assert vec.dccs == fallback.dccs
            assert vec.selected_by == fallback.selected_by
            assert vec.nodes_in_dccs == fallback.nodes_in_dccs
            assert vec.dccs

    def test_trial_rounds_vectorized_matches_python(self):
        # list_coloring_random: the numpy round and the pure-Python round
        # consume the same randbytes draw and must commit identical colors
        # (the vectorized gate needs >= 64 live nodes, so n is above it).
        import random as random_mod

        import repro.primitives.list_coloring as lc
        from repro.graphs.generators import random_regular_graph, torus_grid
        from repro.graphs.validation import UNCOLORED, validate_coloring
        from repro.local.rounds import RoundLedger

        workloads = [
            (random_regular_graph(300, 5, seed=1), 6),
            (torus_grid(17, 19), 5),
        ]
        for graph, palette in workloads:
            for seed in range(3):
                vec_colors = [UNCOLORED] * graph.n
                rng = random_mod.Random(seed)
                vec_stats = lc.list_coloring_random(
                    graph, vec_colors, set(range(graph.n)), palette,
                    RoundLedger(), rng,
                )
                vec_tail = rng.random()

                py_colors = [UNCOLORED] * graph.n
                rng = random_mod.Random(seed)

                class _NoVector:
                    def __init__(self, *args, **kwargs):
                        raise AssertionError("vectorized path must be off")

                real = lc._VectorRoundState
                lc._VectorRoundState = _NoVector
                try:
                    # force the scalar rounds by lying about numpy
                    import builtins

                    orig_import = builtins.__import__

                    def no_numpy(name, *args, **kwargs):
                        if name == "numpy":
                            raise ImportError("forced")
                        return orig_import(name, *args, **kwargs)

                    builtins.__import__ = no_numpy
                    try:
                        py_stats = lc.list_coloring_random(
                            graph, py_colors, set(range(graph.n)), palette,
                            RoundLedger(), rng,
                        )
                    finally:
                        builtins.__import__ = orig_import
                finally:
                    lc._VectorRoundState = real
                assert vec_colors == py_colors
                assert vec_stats.iterations == py_stats.iterations
                assert vec_tail == rng.random()
                validate_coloring(graph, vec_colors, max_colors=palette)
