"""Tests for DCC detection and the virtual graph G_DCC (phases 1-2)."""

import random

import pytest

from repro.core.dcc import DCCScratch, detect_dccs, virtual_graph_ruling_set
from repro.graphs.generators import (
    complete_graph_minus_edge,
    random_gallai_tree,
    random_regular_graph,
    torus_grid,
)
from repro.graphs.properties import is_degree_choosable_component
from repro.local.rounds import RoundLedger


class TestDetection:
    def test_torus_every_node_selects(self):
        g = torus_grid(8, 8)
        detection = detect_dccs(g, radius=2)
        assert all(detection.selected_by[v] != -1 for v in range(g.n))
        for dcc in detection.dccs:
            assert is_degree_choosable_component(g, dcc)

    def test_high_girth_has_no_small_dccs(self, high_girth_cubic):
        detection = detect_dccs(high_girth_cubic, radius=2)
        assert detection.dccs == []
        assert detection.nodes_in_dccs == set()

    def test_gallai_tree_has_no_dccs_at_any_radius(self):
        g = random_gallai_tree(12, seed=4)
        detection = detect_dccs(g, radius=6)
        assert detection.dccs == []

    def test_k_minus_edge_detected(self):
        g = complete_graph_minus_edge(6)
        detection = detect_dccs(g, radius=2)
        assert len(detection.dccs) == 1
        assert set(detection.dccs[0]) == set(range(6))

    def test_rounds_charged_equal_radius(self):
        g = torus_grid(5, 5)
        ledger = RoundLedger()
        detection = detect_dccs(g, radius=3, ledger=ledger)
        assert ledger.total_rounds == 3
        assert detection.rounds == 3

    def test_active_subset(self):
        g = torus_grid(8, 8)
        active = set(range(0, 32))  # four torus rows: still contains 4-cycles
        detection = detect_dccs(g, radius=2, active=active)
        for dcc in detection.dccs:
            assert set(dcc) <= active

    def test_random_regular_detects_only_cycle_neighborhoods(self):
        g = random_regular_graph(400, 3, seed=8)
        detection = detect_dccs(g, radius=2)
        # locally tree-like: only a few nodes live on short cycles
        assert len(detection.nodes_in_dccs) < g.n // 4
        for dcc in detection.dccs:
            assert is_degree_choosable_component(g, dcc)


class TestSharedScratch:
    """detect_dccs(scratch=...) — the hoisted per-layer mask/scratch."""

    def test_scratch_reuse_matches_fresh_allocation(self):
        g = torus_grid(8, 8)
        scratch = DCCScratch(g.n)
        layers = [
            set(range(0, 32)),
            set(range(16, 64)),
            set(range(0, 64, 3)) | set(range(1, 20)),
        ]
        for active in layers:
            fresh = detect_dccs(g, radius=2, active=active)
            shared = detect_dccs(g, radius=2, active=active, scratch=scratch)
            assert fresh.dccs == shared.dccs
            assert fresh.selected_by == shared.selected_by
            assert fresh.nodes_in_dccs == shared.nodes_in_dccs
        # the scratch is handed back zeroed every time
        assert not any(scratch.mask)
        assert not any(scratch.active_mask)
        assert not any(scratch.scratch[0]) and not any(scratch.scratch[1])

    def test_scratch_reuse_on_full_graph_sweeps(self):
        g = random_regular_graph(300, 4, seed=3)
        scratch = DCCScratch(g.n)
        fresh = detect_dccs(g, radius=2)
        shared = detect_dccs(g, radius=2, scratch=scratch)
        assert fresh.dccs == shared.dccs
        assert fresh.selected_by == shared.selected_by

    def test_scratch_size_mismatch_rejected(self):
        g = torus_grid(5, 5)
        with pytest.raises(ValueError, match="sized for"):
            detect_dccs(g, radius=2, scratch=DCCScratch(g.n + 1))

    def test_layered_pipeline_outputs_unchanged_fixed_seed(self):
        """The components pipeline (per-component detect_dccs through the
        shared scratch) must keep its fixed-seed outputs: same digest via
        the facade whether or not a warm scratch is in play."""
        import hashlib

        from repro.api import solve
        from repro.graphs.generators import disjoint_union
        from repro.graphs.validation import validate_coloring

        graph = disjoint_union(
            [torus_grid(4, 5), complete_graph_minus_edge(6), torus_grid(3, 7)]
        )
        digests = set()
        for _ in range(2):
            result = solve(graph, algorithm="components", seed=2)
            validate_coloring(graph, list(result.colors), max_colors=result.palette)
            digests.add(
                hashlib.sha256(
                    ",".join(map(str, result.colors)).encode()
                ).hexdigest()
            )
        assert len(digests) == 1


class TestVirtualRulingSet:
    def _conflicts(self, graph, dccs, a, b):
        set_a, set_b = set(dccs[a]), set(dccs[b])
        if set_a & set_b:
            return True
        adj = graph.adjacency_sets()
        return any(u in adj[v] for v in set_a for u in set_b)

    @pytest.mark.parametrize("seed", range(4))
    def test_independence(self, seed):
        g = torus_grid(8, 8)
        detection = detect_dccs(g, radius=2)
        chosen, _ = virtual_graph_ruling_set(
            g, detection.dccs, rounds_per_virtual=5, rng=random.Random(seed)
        )
        for i, a in enumerate(chosen):
            for b in chosen[i + 1:]:
                assert not self._conflicts(g, detection.dccs, a, b)

    def test_maximality_every_dcc_dominated(self):
        g = torus_grid(8, 8)
        detection = detect_dccs(g, radius=2)
        chosen, _ = virtual_graph_ruling_set(
            g, detection.dccs, rounds_per_virtual=5, rng=random.Random(1)
        )
        chosen_set = set(chosen)
        for idx in range(len(detection.dccs)):
            if idx in chosen_set:
                continue
            assert any(self._conflicts(g, detection.dccs, idx, c) for c in chosen_set)

    def test_empty_input(self):
        g = torus_grid(5, 5)
        chosen, iterations = virtual_graph_ruling_set(g, [], rounds_per_virtual=3)
        assert chosen == [] and iterations == 0

    def test_rounds_charged(self):
        g = torus_grid(6, 6)
        detection = detect_dccs(g, radius=2)
        ledger = RoundLedger()
        _, iterations = virtual_graph_ruling_set(
            g, detection.dccs, rounds_per_virtual=5, ledger=ledger, rng=random.Random(2)
        )
        assert ledger.total_rounds >= 2 * 5 * iterations

    def test_iteration_cap_with_finisher_still_maximal(self):
        g = torus_grid(10, 10)
        detection = detect_dccs(g, radius=2)
        chosen, _ = virtual_graph_ruling_set(
            g, detection.dccs, rounds_per_virtual=5, rng=random.Random(3), max_iterations=1
        )
        chosen_set = set(chosen)
        for i, a in enumerate(chosen):
            for b in chosen[i + 1:]:
                assert not self._conflicts(g, detection.dccs, a, b)
        for idx in range(len(detection.dccs)):
            if idx not in chosen_set:
                assert any(self._conflicts(g, detection.dccs, idx, c) for c in chosen_set)
