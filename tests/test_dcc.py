"""Tests for DCC detection and the virtual graph G_DCC (phases 1-2)."""

import random

import pytest

from repro.core.dcc import detect_dccs, virtual_graph_ruling_set
from repro.graphs.generators import (
    complete_graph_minus_edge,
    high_girth_regular_graph,
    random_gallai_tree,
    random_regular_graph,
    torus_grid,
)
from repro.graphs.properties import is_degree_choosable_component
from repro.local.rounds import RoundLedger


class TestDetection:
    def test_torus_every_node_selects(self):
        g = torus_grid(8, 8)
        detection = detect_dccs(g, radius=2)
        assert all(detection.selected_by[v] != -1 for v in range(g.n))
        for dcc in detection.dccs:
            assert is_degree_choosable_component(g, dcc)

    def test_high_girth_has_no_small_dccs(self, high_girth_cubic):
        detection = detect_dccs(high_girth_cubic, radius=2)
        assert detection.dccs == []
        assert detection.nodes_in_dccs == set()

    def test_gallai_tree_has_no_dccs_at_any_radius(self):
        g = random_gallai_tree(12, seed=4)
        detection = detect_dccs(g, radius=6)
        assert detection.dccs == []

    def test_k_minus_edge_detected(self):
        g = complete_graph_minus_edge(6)
        detection = detect_dccs(g, radius=2)
        assert len(detection.dccs) == 1
        assert set(detection.dccs[0]) == set(range(6))

    def test_rounds_charged_equal_radius(self):
        g = torus_grid(5, 5)
        ledger = RoundLedger()
        detection = detect_dccs(g, radius=3, ledger=ledger)
        assert ledger.total_rounds == 3
        assert detection.rounds == 3

    def test_active_subset(self):
        g = torus_grid(8, 8)
        active = set(range(0, 32))  # four torus rows: still contains 4-cycles
        detection = detect_dccs(g, radius=2, active=active)
        for dcc in detection.dccs:
            assert set(dcc) <= active

    def test_random_regular_detects_only_cycle_neighborhoods(self):
        g = random_regular_graph(400, 3, seed=8)
        detection = detect_dccs(g, radius=2)
        # locally tree-like: only a few nodes live on short cycles
        assert len(detection.nodes_in_dccs) < g.n // 4
        for dcc in detection.dccs:
            assert is_degree_choosable_component(g, dcc)


class TestVirtualRulingSet:
    def _conflicts(self, graph, dccs, a, b):
        set_a, set_b = set(dccs[a]), set(dccs[b])
        if set_a & set_b:
            return True
        adj = graph.adjacency_sets()
        return any(u in adj[v] for v in set_a for u in set_b)

    @pytest.mark.parametrize("seed", range(4))
    def test_independence(self, seed):
        g = torus_grid(8, 8)
        detection = detect_dccs(g, radius=2)
        chosen, _ = virtual_graph_ruling_set(
            g, detection.dccs, rounds_per_virtual=5, rng=random.Random(seed)
        )
        for i, a in enumerate(chosen):
            for b in chosen[i + 1:]:
                assert not self._conflicts(g, detection.dccs, a, b)

    def test_maximality_every_dcc_dominated(self):
        g = torus_grid(8, 8)
        detection = detect_dccs(g, radius=2)
        chosen, _ = virtual_graph_ruling_set(
            g, detection.dccs, rounds_per_virtual=5, rng=random.Random(1)
        )
        chosen_set = set(chosen)
        for idx in range(len(detection.dccs)):
            if idx in chosen_set:
                continue
            assert any(self._conflicts(g, detection.dccs, idx, c) for c in chosen_set)

    def test_empty_input(self):
        g = torus_grid(5, 5)
        chosen, iterations = virtual_graph_ruling_set(g, [], rounds_per_virtual=3)
        assert chosen == [] and iterations == 0

    def test_rounds_charged(self):
        g = torus_grid(6, 6)
        detection = detect_dccs(g, radius=2)
        ledger = RoundLedger()
        _, iterations = virtual_graph_ruling_set(
            g, detection.dccs, rounds_per_virtual=5, ledger=ledger, rng=random.Random(2)
        )
        assert ledger.total_rounds >= 2 * 5 * iterations

    def test_iteration_cap_with_finisher_still_maximal(self):
        g = torus_grid(10, 10)
        detection = detect_dccs(g, radius=2)
        chosen, _ = virtual_graph_ruling_set(
            g, detection.dccs, rounds_per_virtual=5, rng=random.Random(3), max_iterations=1
        )
        chosen_set = set(chosen)
        for i, a in enumerate(chosen):
            for b in chosen[i + 1:]:
                assert not self._conflicts(g, detection.dccs, a, b)
        for idx in range(len(detection.dccs)):
            if idx not in chosen_set:
                assert any(self._conflicts(g, detection.dccs, idx, c) for c in chosen_set)
