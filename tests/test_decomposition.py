"""Tests for small-component finishers (gathering + MPX clustering)."""

import random

import pytest

from repro.graphs.bfs import bfs_distances
from repro.graphs.generators import random_regular_graph, torus_grid
from repro.graphs.validation import UNCOLORED, validate_coloring
from repro.local.rounds import RoundLedger
from repro.primitives.decomposition import (
    gather_component_cost,
    mpx_clustering,
    solve_component_by_clustering,
    solve_components_by_gathering,
)


class TestGathering:
    def test_cost_formula(self):
        g = torus_grid(5, 5)
        component = list(range(g.n))
        cost = gather_component_cost(g, component, set(component))
        dist = bfs_distances(g, [0])
        assert cost == 2 * max(dist) + 1

    def test_solves_deg_plus_one_instance(self):
        g = random_regular_graph(200, 4, seed=1)
        colors = [UNCOLORED] * g.n
        ledger = RoundLedger()
        cost = solve_components_by_gathering(g, colors, [list(range(g.n))], 5, ledger)
        validate_coloring(g, colors, max_colors=5)
        assert ledger.total_rounds == cost

    def test_parallel_components_charge_max(self):
        g = torus_grid(6, 6)
        colors = [UNCOLORED] * g.n
        comp_a = list(range(0, 6))        # one torus row
        comp_b = list(range(18, 24))
        ledger = RoundLedger()
        solve_components_by_gathering(g, colors, [comp_a, comp_b], 5, ledger)
        cost_a = gather_component_cost(g, comp_a, set(comp_a))
        assert ledger.total_rounds == cost_a  # equal-size rows: max == each


class TestMPX:
    @pytest.mark.parametrize("beta", [0.3, 0.6, 1.0])
    def test_partition_properties(self, beta):
        g = random_regular_graph(300, 4, seed=2)
        members = set(range(g.n))
        clustering = mpx_clustering(g, members, beta, random.Random(1))
        assert set(clustering.cluster_of) == members
        assert set(clustering.centers) == set(clustering.cluster_of.values())
        # each center belongs to its own cluster
        for center in clustering.centers:
            assert clustering.cluster_of[center] == center

    def test_clusters_are_connected(self):
        g = random_regular_graph(200, 3, seed=3)
        clustering = mpx_clustering(g, set(range(g.n)), 0.5, random.Random(2))
        for center in clustering.centers:
            members = {v for v, c in clustering.cluster_of.items() if c == center}
            dist = bfs_distances(g, [center], allowed=members)
            assert all(dist[v] != -1 for v in members)

    def test_larger_beta_gives_smaller_radius(self):
        g = random_regular_graph(400, 4, seed=4)
        rng = random.Random(5)
        loose = mpx_clustering(g, set(range(g.n)), 0.2, rng)
        tight = mpx_clustering(g, set(range(g.n)), 1.5, random.Random(5))
        assert tight.max_radius <= loose.max_radius + 2

    def test_subset_clustering(self):
        g = torus_grid(8, 8)
        members = set(range(0, g.n, 2))
        clustering = mpx_clustering(g, members, 0.5, random.Random(3))
        assert set(clustering.cluster_of) == members


class TestClusteringSolve:
    @pytest.mark.parametrize("seed", range(3))
    def test_colors_component(self, seed):
        g = random_regular_graph(200, 4, seed=seed + 10)
        colors = [UNCOLORED] * g.n
        ledger = RoundLedger()
        rounds = solve_component_by_clustering(
            g, colors, list(range(g.n)), 5, rng=random.Random(seed), ledger=ledger
        )
        validate_coloring(g, colors, max_colors=5)
        assert ledger.total_rounds == rounds
