"""Tests for the constructive degree-list colorer (Theorem 8).

Includes the brute-force agreement test: on small instances, the
constructive decision (colorable / infeasible) matches exhaustive search.
"""

import itertools
import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.degree_choosable import backtracking_list_color, degree_list_color
from repro.errors import InfeasibleListColoringError
from repro.graphs.generators import (
    complete_graph,
    complete_graph_minus_edge,
    cycle_graph,
    hypercube,
    random_gallai_tree,
    random_nice_graph,
    random_regular_graph,
    torus_grid,
)
from repro.graphs.graph import Graph
from repro.graphs.properties import is_gallai_tree


def _check(graph, lists):
    colors = degree_list_color(graph, lists)
    for u, v in graph.edges():
        assert colors[u] != colors[v]
    for v in range(graph.n):
        assert colors[v] in lists[v]
    return colors


class TestConstructiveCases:
    def test_dcc_with_tight_lists(self):
        g = complete_graph_minus_edge(5)
        _check(g, [set(range(1, 5)) for _ in range(5)])

    def test_even_cycle_tight(self):
        _check(cycle_graph(8), [{1, 2} for _ in range(8)])

    def test_even_cycle_distinct_pairs(self):
        # unequal 2-lists on an even cycle go through case 3a
        lists = [{1, 2}, {1, 2}, {2, 3}, {1, 2}, {1, 2}, {1, 3}]
        _check(cycle_graph(6), [set(s) for s in lists])

    def test_surplus_node(self):
        g = complete_graph(4)
        lists = [set(range(1, 5)), {1, 2, 3}, {1, 2, 3}, {2, 3, 4}]
        _check(g, lists)

    def test_block_reduction(self):
        # even cycle with a pendant path: reduction peels the path
        edges = list(cycle_graph(6).edges()) + [(0, 6), (6, 7)]
        g = Graph(8, edges)
        lists = [set(range(1, g.degree(v) + 1)) for v in range(8)]
        _check(g, lists)

    def test_singleton(self):
        assert degree_list_color(Graph(1), [{3}]) == [3]

    def test_single_edge_distinct_lists(self):
        g = Graph(2, [(0, 1)])
        assert degree_list_color(g, [{1}, {2}]) in ([1, 2],)


class TestInfeasibleCases:
    def test_odd_cycle_tight(self):
        with pytest.raises(InfeasibleListColoringError):
            degree_list_color(cycle_graph(7), [{1, 2} for _ in range(7)])

    def test_tight_clique(self):
        with pytest.raises(InfeasibleListColoringError):
            degree_list_color(complete_graph(4), [set(range(1, 4)) for _ in range(4)])

    def test_single_edge_same_singleton(self):
        g = Graph(2, [(0, 1)])
        with pytest.raises(InfeasibleListColoringError):
            degree_list_color(g, [{1}, {1}])

    def test_rejects_undersized_lists(self):
        g = complete_graph(3)
        with pytest.raises(InfeasibleListColoringError, match="degree"):
            degree_list_color(g, [{1}, {1, 2}, {1, 2}])


class TestBrooksColoring:
    """Δ-lists on Δ-regular nice graphs — the centralized Brooks case."""

    @pytest.mark.parametrize(
        "n,d,seed", [(60, 3, 1), (80, 4, 2), (60, 5, 3), (200, 3, 9), (100, 6, 5)]
    )
    def test_random_regular(self, n, d, seed):
        g = random_regular_graph(n, d, seed=seed)
        _check(g, [set(range(1, d + 1)) for _ in range(n)])

    def test_torus(self):
        g = torus_grid(7, 9)
        _check(g, [set(range(1, 5)) for _ in range(g.n)])

    def test_hypercube(self):
        g = hypercube(4)
        _check(g, [set(range(1, 5)) for _ in range(g.n)])

    @pytest.mark.parametrize("seed", range(5))
    def test_irregular_nice(self, seed):
        g = random_nice_graph(80, 4, seed=seed)
        _check(g, [set(range(1, 5)) for _ in range(g.n)])


class TestBruteForceAgreement:
    def _feasible_bruteforce(self, g, lists):
        return any(
            all(combo[u] != combo[v] for u, v in g.edges())
            for combo in itertools.product(*[sorted(lists[v]) for v in range(g.n)])
        )

    @pytest.mark.parametrize("seed", range(30))
    def test_gallai_instances(self, seed):
        rng = random.Random(seed)
        g = random_gallai_tree(3, seed=seed, max_clique=4, max_cycle=5)
        if g.n > 10:
            pytest.skip("instance too large for brute force")
        lists = [
            set(rng.sample(range(1, max(8, g.degree(v) + 2)), max(1, g.degree(v))))
            for v in range(g.n)
        ]
        expected = self._feasible_bruteforce(g, lists)
        try:
            _check(g, [set(s) for s in lists])
            got = True
        except InfeasibleListColoringError:
            got = False
        assert got == expected

    @pytest.mark.parametrize("seed", range(30))
    def test_non_gallai_always_colorable(self, seed):
        rng = random.Random(seed + 1000)
        g_nx = nx.gnp_random_graph(rng.randrange(5, 11), 0.45, seed=seed)
        if not nx.is_connected(g_nx):
            pytest.skip("disconnected sample")
        g = Graph(g_nx.number_of_nodes(), list(g_nx.edges()))
        if is_gallai_tree(g):
            pytest.skip("gallai sample")
        lists = [
            set(rng.sample(range(1, 2 * max(1, g.degree(v)) + 1), max(1, g.degree(v))))
            for v in range(g.n)
        ]
        _check(g, lists)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_property_tight_lists_on_regular(self, seed):
        g = random_regular_graph(40, 3, seed=seed)
        _check(g, [set(range(1, 4)) for _ in range(40)])


class TestBacktracking:
    def test_solves_triangle_with_rotating_lists(self):
        g = complete_graph(3)
        colors = [0, 0, 0]
        result = backtracking_list_color(g, [{1, 2}, {2, 3}, {1, 3}], colors, [0, 1, 2])
        assert result is not None
        for u, v in g.edges():
            assert colors[u] != colors[v]

    def test_returns_none_when_infeasible(self):
        g = complete_graph(3)
        colors = [0, 0, 0]
        assert backtracking_list_color(g, [{1, 2}, {1, 2}, {1, 2}], colors, [0, 1, 2]) is None

    def test_respects_precolored_neighbors(self):
        g = Graph(3, [(0, 1), (1, 2)])
        colors = [1, 0, 0]
        result = backtracking_list_color(g, [{1}, {1, 2}, {2, 3}], colors, [1, 2])
        assert result is not None
        assert colors[1] == 2 and colors[2] == 3
