"""End-to-end tests for the deterministic Δ-coloring (Theorem 4)."""

import pytest

from repro.core.deterministic import delta_coloring_deterministic, ruling_distance
from repro.errors import AlgorithmContractError, NotNiceGraphError
from repro.graphs.generators import (
    complete_graph,
    high_girth_regular_graph,
    hypercube,
    random_nice_graph,
    random_regular_graph,
    torus_grid,
)
from repro.graphs.validation import validate_coloring


class TestEndToEnd:
    @pytest.mark.parametrize("d", [3, 4, 5, 6])
    def test_regular_graphs(self, d):
        g = random_regular_graph(300, d, seed=d + 1)
        result = delta_coloring_deterministic(g, strict=True)
        validate_coloring(g, result.colors, max_colors=d)

    def test_torus(self):
        g = torus_grid(11, 12)
        result = delta_coloring_deterministic(g, strict=True)
        validate_coloring(g, result.colors, max_colors=4)

    def test_hypercube(self):
        g = hypercube(5)
        result = delta_coloring_deterministic(g, strict=True)
        validate_coloring(g, result.colors, max_colors=5)

    @pytest.mark.parametrize("seed", range(4))
    def test_irregular(self, seed):
        g = random_nice_graph(250, 4, seed=seed)
        result = delta_coloring_deterministic(g, strict=True)
        validate_coloring(g, result.colors, max_colors=4)

    def test_high_girth(self):
        g = high_girth_regular_graph(700, 3, girth=8, seed=2)
        result = delta_coloring_deterministic(g, strict=True)
        validate_coloring(g, result.colors, max_colors=3)

    def test_rejects_clique(self):
        with pytest.raises(NotNiceGraphError):
            delta_coloring_deterministic(complete_graph(5))

    def test_rejects_low_delta(self):
        # Δ=2 graphs are cycles/paths — not nice; caught earlier
        from repro.graphs.generators import cycle_graph

        with pytest.raises((NotNiceGraphError, AlgorithmContractError)):
            delta_coloring_deterministic(cycle_graph(10))


class TestDeterminism:
    def test_fully_reproducible(self):
        g = random_regular_graph(300, 4, seed=3)
        a = delta_coloring_deterministic(g)
        b = delta_coloring_deterministic(g)
        assert a.colors == b.colors
        assert a.rounds == b.rounds


class TestStructure:
    def test_ruling_distance_formula(self):
        # R = 4·ceil(log_{Δ-1} n) + 1
        assert ruling_distance(1000, 4) == 4 * 7 + 1
        assert ruling_distance(2, 4) == 5

    def test_layers_cover_graph(self):
        g = random_regular_graph(400, 4, seed=5)
        result = delta_coloring_deterministic(g, strict=True)
        assert result.stats["num_layers"] >= 1
        assert result.stats["b0_size"] >= 1

    def test_custom_ruling_k(self):
        g = random_regular_graph(300, 4, seed=6)
        result = delta_coloring_deterministic(g, ruling_k=6, strict=True)
        validate_coloring(g, result.colors, max_colors=4)
        assert result.stats["ruling_distance"] == 6

    def test_fix_stats_reported(self):
        g = random_regular_graph(300, 4, seed=7)
        result = delta_coloring_deterministic(g)
        assert "fix_modes" in result.stats
        assert sum(result.stats["fix_modes"].values()) == result.stats["b0_size"]

    def test_phase_rounds_sum(self):
        g = random_regular_graph(200, 5, seed=8)
        result = delta_coloring_deterministic(g)
        assert result.rounds == sum(result.phase_rounds.values())
