"""Tests for the updatable CSR (:class:`repro.graphs.dynamic.DynamicGraph`).

The load-bearing contract: after any sequence of deltas, a dynamic
graph's compacted ``csr()`` is **bit-identical** to the immutable graph
produced by folding the same deltas through
:meth:`repro.graphs.Graph.apply_updates` — same offsets, same indices,
same neighbour order.  The immutable path is the correctness reference;
the dynamic path is the O(Δ)-per-op reimplementation.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs.dynamic import DynamicGraph
from repro.graphs.generators import random_regular_graph
from repro.graphs.graph import Graph


def assert_csr_identical(dyn: DynamicGraph, ref: Graph) -> None:
    ro, ri = ref.csr()
    do, di = dyn.csr()
    assert do == ro, "offsets diverged from the immutable reference"
    assert di == ri, "indices diverged from the immutable reference"
    assert dyn.num_edges == ref.num_edges
    assert dyn.max_degree() == ref.max_degree()


def random_stream(rng, reference: set, n, ops, batch_max=3):
    """A valid update stream: per step, disjoint added/removed lists."""
    steps = []
    current = set(reference)
    for _ in range(ops):
        added, removed = [], []
        for _ in range(rng.randrange(1, batch_max + 1)):
            u, v = rng.randrange(n), rng.randrange(n)
            if u == v:
                continue
            key = (u, v) if u < v else (v, u)
            if key in current and key not in removed and key not in added:
                removed.append(key)
                current.discard(key)
            elif key not in current and key not in added and key not in removed:
                added.append(key)
                current.add(key)
        steps.append((added, removed))
    return steps


class TestConstruction:
    def test_from_graph_is_bit_identical(self):
        graph = random_regular_graph(64, 6, seed=3)
        dyn = DynamicGraph.from_graph(graph)
        assert_csr_identical(dyn, graph)
        assert dyn.degrees() == graph.degrees()
        assert dyn.adj == graph.adj
        assert dyn.min_degree() == graph.min_degree()

    def test_constructor_matches_graph_constructor(self):
        edges = [(0, 1), (1, 2), (2, 3), (0, 3), (1, 3)]
        dyn = DynamicGraph(5, edges)
        ref = Graph(5, edges)
        assert_csr_identical(dyn, ref)
        # node 4 is isolated
        assert dyn.degree(4) == 0 and list(dyn.neighbors_csr(4)) == []

    def test_row_capacities_are_padded_powers_of_two(self):
        dyn = DynamicGraph.from_graph(random_regular_graph(32, 4, seed=0))
        stats = dyn.storage_stats()
        assert stats["data_slots"] > stats["live_slots"]
        assert stats["holes"] == 0 and stats["relocations"] == 0


class TestInPlaceUpdates:
    def test_insert_and_delete_roundtrip(self):
        graph = random_regular_graph(48, 4, seed=1)
        dyn = DynamicGraph.from_graph(graph)
        pair = next(
            (u, v)
            for u in range(graph.n)
            for v in range(u + 1, graph.n)
            if not graph.has_edge(u, v)
        )
        dyn.insert_edge(*pair)
        assert dyn.has_edge(*pair) and dyn.num_edges == graph.num_edges + 1
        dyn.delete_edge(*pair)
        assert_csr_identical(dyn, graph)

    def test_deletion_preserves_row_order(self):
        # Deleting 1 from 0's row [1, 2, 3] must leave [2, 3], not [3, 2]:
        # downstream seeded algorithms iterate rows in insertion order.
        dyn = DynamicGraph(4, [(0, 1), (0, 2), (0, 3)])
        dyn.delete_edge(0, 1)
        assert list(dyn.neighbors_csr(0)) == [2, 3]

    def test_validation_matches_apply_updates_messages(self):
        dyn = DynamicGraph(4, [(0, 1)])
        with pytest.raises(GraphError, match="already present"):
            dyn.insert_edge(0, 1)
        with pytest.raises(GraphError, match="not present"):
            dyn.delete_edge(1, 2)
        with pytest.raises(GraphError, match="self-loop"):
            dyn.insert_edge(2, 2)
        with pytest.raises(GraphError, match="out of range"):
            dyn.insert_edge(0, 9)
        with pytest.raises(GraphError, match="removed twice"):
            dyn.apply_delta(removed=[(0, 1), (1, 0)])
        with pytest.raises(GraphError, match="both added and removed"):
            dyn.apply_delta(added=[(0, 1)], removed=[(0, 1)])
        # failed deltas leave no partial state behind
        assert dyn.num_edges == 1 and dyn.has_edge(0, 1)

    def test_relocation_grows_overfull_rows(self):
        dyn = DynamicGraph(64, [(0, 1)])
        for v in range(2, 40):
            dyn.insert_edge(0, v)
        assert dyn.degree(0) == 39
        assert dyn.relocations > 0
        assert sorted(dyn.neighbors_csr(0)) == list(range(1, 40))

    def test_compaction_triggers_and_preserves_content(self):
        rng = random.Random(7)
        n = 32
        dyn = DynamicGraph(n, [])
        ref = Graph(n, [])
        # Hammer a few rows so relocations pile up holes past the
        # half-buffer trigger.
        for step in random_stream(rng, set(), n, ops=400, batch_max=2):
            added, removed = step
            dyn.apply_delta(added=added, removed=removed)
            ref = ref.apply_updates(added=added, removed=removed)
        assert dyn.compactions > 0, "stream never triggered a compaction"
        assert_csr_identical(dyn, ref)
        stats = dyn.storage_stats()
        assert stats["holes"] * 3 <= stats["data_slots"]

    def test_max_degree_histogram_tracks_deletions(self):
        dyn = DynamicGraph(6, [(0, 1), (0, 2), (0, 3), (4, 5)])
        assert dyn.max_degree() == 3
        dyn.delete_edge(0, 1)
        assert dyn.max_degree() == 2
        dyn.delete_edge(0, 2)
        dyn.delete_edge(0, 3)
        assert dyn.max_degree() == 1
        dyn.delete_edge(4, 5)
        assert dyn.max_degree() == 0

    def test_delta_after_peeks_without_mutation(self):
        dyn = DynamicGraph(6, [(0, 1), (0, 2), (0, 3), (4, 5)])
        assert dyn.delta_after([(1, 2)], []) == 3
        assert dyn.delta_after([(0, 4)], []) == 4
        assert dyn.delta_after([], [(0, 1)]) == 2
        assert dyn.delta_after([(1, 2)], [(0, 1)]) == 2
        # peeks never touch the graph
        assert dyn.max_degree() == 3 and dyn.num_edges == 4


class TestUndo:
    def test_undo_restores_bit_identical_state(self):
        graph = random_regular_graph(40, 4, seed=2)
        dyn = DynamicGraph.from_graph(graph)
        pair = next(
            (u, v)
            for u in range(graph.n)
            for v in range(u + 1, graph.n)
            if not graph.has_edge(u, v)
        )
        edge = next(graph.edges())
        undo = dyn.apply_delta(added=[pair], removed=[edge], record_undo=True)
        dyn.undo_delta(undo)
        assert_csr_identical(dyn, graph)

    def test_undo_survives_interleaved_compaction(self):
        rng = random.Random(11)
        n = 24
        dyn = DynamicGraph(n, [(i, (i + 1) % n) for i in range(n)])
        for _ in range(200):
            ref = dyn.snapshot()
            u, v = rng.randrange(n), rng.randrange(n)
            if u == v:
                continue
            if dyn.has_edge(u, v):
                undo = dyn.apply_delta(removed=[(u, v)], record_undo=True)
            else:
                undo = dyn.apply_delta(added=[(u, v)], record_undo=True)
            dyn.undo_delta(undo)
            assert_csr_identical(dyn, ref)
            # re-apply so the stream (and its relocations) still happen
            if ref.has_edge(u, v):
                dyn.apply_delta(removed=[(u, v)])
            else:
                dyn.apply_delta(added=[(u, v)])


class TestSnapshot:
    def test_snapshot_is_immutable_and_detached(self):
        dyn = DynamicGraph(5, [(0, 1), (1, 2)])
        snap = dyn.snapshot()
        assert isinstance(snap, Graph) and not isinstance(snap, DynamicGraph)
        dyn.insert_edge(3, 4)
        # the earlier snapshot must not see the mutation
        assert not snap.has_edge(3, 4)
        assert dyn.snapshot().has_edge(3, 4)

    def test_snapshot_cached_until_mutation(self):
        dyn = DynamicGraph(5, [(0, 1)])
        assert dyn.snapshot() is dyn.snapshot()
        dyn.insert_edge(2, 3)
        first = dyn.snapshot()
        assert first is dyn.snapshot()

    def test_apply_updates_returns_plain_graph(self):
        dyn = DynamicGraph(5, [(0, 1)])
        child = dyn.apply_updates(added=[(1, 2)])
        assert child.has_edge(1, 2)
        assert not dyn.has_edge(1, 2), "immutable-style delta mutated the dynamic graph"


class TestCompactionTwins:
    def test_numpy_and_python_compaction_agree(self):
        np = pytest.importorskip("numpy")
        rng = random.Random(5)
        dyn = DynamicGraph.from_graph(random_regular_graph(600, 6, seed=5))
        for step in random_stream(rng, set(dyn.snapshot().edges()), 600, ops=40):
            dyn.apply_delta(added=step[0], removed=step[1])
        off_np, idx_np = dyn._compact_numpy(np)
        off_py, idx_py = dyn._compact_python()
        assert off_np == off_py and idx_np == idx_py


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_random_streams_pin_dynamic_to_immutable(data):
    """Property: folding any valid update stream through DynamicGraph
    in place equals folding it through immutable apply_updates, CSR
    bit for bit — including after undo/redo of every step."""
    n = data.draw(st.integers(min_value=2, max_value=12), label="n")
    all_pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = data.draw(
        st.lists(st.sampled_from(all_pairs), unique=True, max_size=len(all_pairs)),
        label="edges",
    )
    ref = Graph(n, edges)
    dyn = DynamicGraph.from_graph(ref)
    current = set(edges)
    ops = data.draw(st.integers(min_value=1, max_value=10), label="ops")
    for _ in range(ops):
        present = sorted(current)
        absent = sorted(set(all_pairs) - current)
        added, removed = [], []
        if absent and data.draw(st.booleans(), label="insert?"):
            added = [data.draw(st.sampled_from(absent), label="edge")]
        elif present:
            removed = [data.draw(st.sampled_from(present), label="edge")]
        else:
            continue
        new_ref = ref.apply_updates(added=added, removed=removed)
        undo = dyn.apply_delta(added=added, removed=removed, record_undo=True)
        assert_csr_identical(dyn, new_ref)
        dyn.undo_delta(undo)
        assert_csr_identical(dyn, ref)
        dyn.apply_delta(added=added, removed=removed)
        ref = new_ref
        current.difference_update(removed)
        current.update(added)
