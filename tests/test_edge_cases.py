"""Torture tests: minimal and adversarial structures.

Theta graphs are the *minimal* degree-choosable components (two nodes
joined by three internally disjoint paths — 2-connected, neither a clique
nor an odd cycle), so they exercise every DCC code path with the least
possible slack.  The other cases are the smallest nice graphs and shapes
that historically break coloring code (bulls, books, barbells).
"""

import pytest

from repro import (
    UNCOLORED,
    degree_list_color,
    delta_color,
    delta_coloring_deterministic,
    fix_uncolored_node,
    validate_coloring,
)
from repro.core.dcc import detect_dccs
from repro.errors import InfeasibleListColoringError
from repro.graphs.graph import Graph
from repro.graphs.properties import (
    is_degree_choosable_component,
    is_gallai_tree,
    is_nice,
)
from repro.local.rounds import RoundLedger


def theta_graph(a: int, b: int, c: int) -> Graph:
    """Two hub nodes joined by three disjoint paths of a/b/c inner nodes."""
    edges = []
    n = 2
    for length in (a, b, c):
        previous = 0
        for _ in range(length):
            edges.append((previous, n))
            previous = n
            n += 1
        edges.append((previous, 1))
    return Graph(n, edges)


class TestThetaGraphs:
    @pytest.mark.parametrize("a,b,c", [(1, 1, 1), (1, 2, 3), (2, 2, 2), (0, 1, 1), (3, 3, 5)])
    def test_theta_is_dcc(self, a, b, c):
        g = theta_graph(a, b, c)
        assert is_degree_choosable_component(g, range(g.n))
        assert not is_gallai_tree(g)

    @pytest.mark.parametrize("a,b,c", [(1, 1, 1), (1, 2, 3), (2, 2, 2), (3, 3, 5)])
    def test_theta_tight_degree_lists(self, a, b, c):
        g = theta_graph(a, b, c)
        lists = [set(range(1, g.degree(v) + 1)) for v in range(g.n)]
        colors = degree_list_color(g, lists)
        validate_coloring(g, colors, max_colors=3)

    def test_theta_detected_as_dcc(self):
        g = theta_graph(1, 1, 1)  # K4 minus perfect matching? no: K_{2,3}
        detection = detect_dccs(g, radius=2)
        assert len(detection.dccs) >= 1
        assert detection.nodes_in_dccs == set(range(g.n))

    @pytest.mark.parametrize("a,b,c", [(1, 1, 1), (1, 2, 3), (2, 2, 2)])
    def test_theta_delta_coloring(self, a, b, c):
        g = theta_graph(a, b, c)
        if not is_nice(g):
            pytest.skip("degenerate theta")
        result = delta_color(g, seed=a + b + c)
        validate_coloring(g, result.colors, max_colors=g.max_degree())


class TestSmallestNiceGraphs:
    def test_bull_graph(self):
        # triangle with two horns: Δ = 3, nice
        g = Graph(5, [(0, 1), (1, 2), (0, 2), (0, 3), (1, 4)])
        assert is_nice(g)
        result = delta_color(g, seed=1)
        validate_coloring(g, result.colors, max_colors=3)

    def test_paw_graph(self):
        # triangle plus one pendant: the smallest nice graph
        g = Graph(4, [(0, 1), (1, 2), (0, 2), (0, 3)])
        assert is_nice(g)
        result = delta_color(g, seed=1)
        validate_coloring(g, result.colors, max_colors=3)

    def test_book_graph(self):
        # triangles sharing one edge: B_3
        g = Graph(5, [(0, 1), (0, 2), (1, 2), (0, 3), (1, 3), (0, 4), (1, 4)])
        assert is_nice(g)
        result = delta_color(g, seed=2)
        validate_coloring(g, result.colors, max_colors=g.max_degree())

    def test_barbell(self):
        # two K4s joined by a path: cut structure + dense blocks
        k4a = [(i, j) for i in range(4) for j in range(i + 1, 4)]
        k4b = [(4 + i, 4 + j) for i in range(4) for j in range(i + 1, 4)]
        g = Graph(10, k4a + k4b + [(0, 8), (8, 9), (9, 4)])
        assert is_nice(g)
        result = delta_color(g, seed=3)
        validate_coloring(g, result.colors, max_colors=g.max_degree())
        det = delta_coloring_deterministic(g)
        validate_coloring(g, det.colors, max_colors=g.max_degree())

    def test_two_triangles_sharing_vertex_is_gallai_but_irregular(self):
        g = Graph(5, [(0, 1), (1, 2), (0, 2), (0, 3), (3, 4), (0, 4)])
        assert is_gallai_tree(g)
        assert is_nice(g)  # nice yet Gallai: colorable via deficient nodes
        result = delta_color(g, seed=4)
        validate_coloring(g, result.colors, max_colors=4)


class TestDegreeListEdgeCases:
    def test_k4_minus_perfect_matching_is_cycle(self):
        # K4 minus a perfect matching = C4: even cycle, tight lists work
        g = Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        colors = degree_list_color(g, [{1, 2}] * 4)
        validate_coloring(g, colors, max_colors=2)

    def test_precolored_surroundings(self):
        # a DCC whose outside neighbours already consumed specific colors
        g = theta_graph(1, 2, 2)
        lists = []
        for v in range(g.n):
            base = set(range(1, g.degree(v) + 2))
            lists.append(base - {1} if v % 2 == 0 else base)
        colors = degree_list_color(g, lists)
        for v in range(g.n):
            assert colors[v] in lists[v]

    def test_infeasible_bowtie_tight(self):
        # two triangles sharing the center; the outer pairs force {1,2}
        # and {3,4} respectively, covering the center's whole tight list
        g = Graph(5, [(0, 1), (1, 2), (0, 2), (0, 3), (3, 4), (0, 4)])
        lists = [{1, 2, 3, 4}, {1, 2}, {1, 2}, {3, 4}, {3, 4}]
        with pytest.raises(InfeasibleListColoringError):
            degree_list_color(g, lists)

    def test_feasible_bowtie_center_escape(self):
        # same shape, but both triangles fight over {1,2}: the center
        # escapes to 3 or 4 (this is why Gallai-tight can still work)
        g = Graph(5, [(0, 1), (1, 2), (0, 2), (0, 3), (3, 4), (0, 4)])
        lists = [{1, 2, 3, 4}, {1, 2}, {1, 2}, {1, 2}, {1, 2}]
        colors = degree_list_color(g, lists)
        assert colors[0] in {3, 4}


class TestRepairEdgeCases:
    def test_repair_in_tiny_nice_graph(self):
        g = Graph(4, [(0, 1), (1, 2), (0, 2), (0, 3)])  # paw
        colors = [0, 1, 2, 0]
        colors[0] = UNCOLORED
        colors[3] = 1
        result = fix_uncolored_node(g, colors, 0, 3, ledger=RoundLedger())
        validate_coloring(g, colors, max_colors=3)
        assert result.mode in ("free", "deficient", "dcc", "regional", "duplicate",
                               "uncolored-slack", "shift-early-free")

    def test_repair_with_rainbow_in_theta(self):
        # K_{2,3}: both hubs uncolored, inner nodes rainbow — hub 0 sees
        # all three colors and must exploit the uncolored hub 1
        g = theta_graph(1, 1, 1)
        colors = [UNCOLORED, UNCOLORED, 1, 2, 3]
        result = fix_uncolored_node(g, colors, 0, 3, ledger=RoundLedger())
        validate_coloring(g, colors, allow_partial=True, max_colors=3)
        assert colors[0] != UNCOLORED
        fix_uncolored_node(g, colors, 1, 3, ledger=RoundLedger())
        validate_coloring(g, colors, max_colors=3)
        assert result.mode in (
            "dcc", "regional", "duplicate", "free", "uncolored-slack",
            "shift-early-free", "deficient",
        )
