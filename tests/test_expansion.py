"""Tests for the structural expansion lemmas (Lemmas 10, 12, 14, 15).

These are *measurements* of the lemmas' statements on the graph families
they apply to; experiment E6 builds its tables from the same functions.
"""

import random

import pytest

from repro.analysis.expansion import (
    bfs_tree_is_unique,
    lemma12_bound,
    lemma14_bound,
    lemma15_bound,
    measure_expansion,
)
from repro.core.marking import marking_process
from repro.graphs.generators import (
    high_girth_regular_graph,
    torus_grid,
)
from repro.graphs.validation import UNCOLORED
from repro.local.rounds import RoundLedger


class TestLemma10Uniqueness:
    def test_high_girth_balls_have_unique_bfs_trees(self, high_girth_cubic):
        g = high_girth_cubic
        rng = random.Random(1)
        for _ in range(20):
            root = rng.randrange(g.n)
            # girth >= 8 means no DCC of radius <= 3 around any node
            assert bfs_tree_is_unique(g, root, radius=3)

    def test_torus_violates_uniqueness(self):
        # the torus has 4-cycles: two nodes at level 2 share a parent choice
        g = torus_grid(8, 8)
        assert not bfs_tree_is_unique(g, 0, radius=3)


class TestLemma15:
    """DCC-free Δ-regular balls satisfy |B_r| >= (Δ-1)^{r/2}."""

    @pytest.mark.parametrize("seed", range(3))
    def test_high_girth_cubic(self, seed):
        g = high_girth_regular_graph(900, 3, girth=10, seed=seed)
        sample = measure_expansion(g, radius=4, num_roots=25, rng=random.Random(seed))
        assert sample.min_at_radius() >= lemma15_bound(3, 4)  # (Δ-1)^2 = 4

    def test_high_girth_four_regular(self):
        g = high_girth_regular_graph(800, 4, girth=7, seed=2)
        sample = measure_expansion(g, radius=2, num_roots=25, rng=random.Random(2))
        assert sample.min_at_radius() >= lemma15_bound(4, 2)  # 3


class TestLemma12And14:
    """Expansion survives the marking process on the unmarked graph."""

    def test_unmarked_expansion_cubic(self):
        g = high_girth_regular_graph(1500, 3, girth=10, seed=3)
        colors = [UNCOLORED] * g.n
        marking = marking_process(
            g, set(range(g.n)), colors, 0.002, 12, random.Random(3), RoundLedger()
        )
        unmarked = {v for v in range(g.n) if v not in marking.marked}
        sample = measure_expansion(
            g, radius=6, num_roots=20, allowed=unmarked, rng=random.Random(3)
        )
        # Lemma 14 bound: 4^{r/6} = 4 at r=6; sampled roots should beat it
        assert sample.min_at_radius() >= lemma14_bound(6)

    def test_unmarked_expansion_four_regular(self):
        g = high_girth_regular_graph(900, 4, girth=7, seed=4)
        colors = [UNCOLORED] * g.n
        marking = marking_process(
            g, set(range(g.n)), colors, 0.002, 6, random.Random(4), RoundLedger()
        )
        unmarked = {v for v in range(g.n) if v not in marking.marked}
        sample = measure_expansion(
            g, radius=2, num_roots=20, allowed=unmarked, rng=random.Random(4)
        )
        assert sample.min_at_radius() >= lemma12_bound(4, 2)  # (Δ-2)^1 = 2


class TestBounds:
    def test_bound_values(self):
        assert lemma15_bound(4, 4) == 9.0
        assert lemma12_bound(4, 4) == 4.0
        assert lemma14_bound(12) == 16.0

    def test_measure_structure(self):
        g = torus_grid(7, 7)
        sample = measure_expansion(g, radius=3, num_roots=5, rng=random.Random(0))
        assert len(sample.level_sizes) == 5
        assert all(len(sizes) == 4 for sizes in sample.level_sizes)
        assert sample.mean_at_radius() > 0

    def test_empty_allowed_set(self):
        g = torus_grid(5, 5)
        sample = measure_expansion(g, radius=2, allowed=set(), rng=random.Random(0))
        assert sample.level_sizes == []
