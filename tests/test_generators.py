"""Generator tests, including hypothesis property tests on parameters."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs.generators import (
    complete_graph,
    complete_graph_minus_edge,
    cycle_graph,
    disjoint_union,
    high_girth_regular_graph,
    hypercube,
    path_graph,
    random_gallai_tree,
    random_graph_with_max_degree,
    random_nice_graph,
    random_regular_graph,
    random_tree,
    torus_grid,
)
from repro.graphs.properties import girth_up_to, is_gallai_tree, is_nice


class TestBasicFamilies:
    def test_cycle(self):
        g = cycle_graph(7)
        assert g.n == 7 and g.num_edges == 7
        assert all(g.degree(v) == 2 for v in range(7))

    def test_cycle_rejects_small(self):
        with pytest.raises(GraphError):
            cycle_graph(2)

    def test_path(self):
        g = path_graph(5)
        assert g.num_edges == 4

    def test_complete(self):
        g = complete_graph(6)
        assert g.num_edges == 15

    def test_complete_minus_edge(self):
        g = complete_graph_minus_edge(6)
        assert g.num_edges == 14
        assert not g.has_edge(0, 1)
        assert g.max_degree() == 5 and g.min_degree() == 4

    def test_torus_regular(self):
        g = torus_grid(5, 8)
        assert all(g.degree(v) == 4 for v in range(g.n))
        assert g.is_connected()

    def test_torus_rejects_small(self):
        with pytest.raises(GraphError):
            torus_grid(2, 5)

    def test_hypercube(self):
        g = hypercube(4)
        assert g.n == 16
        assert all(g.degree(v) == 4 for v in range(16))
        assert g.is_connected()


class TestRandomRegular:
    @given(
        n=st.integers(min_value=10, max_value=120),
        d=st.integers(min_value=2, max_value=7),
        seed=st.integers(min_value=0, max_value=1 << 20),
    )
    @settings(max_examples=40, deadline=None)
    def test_regularity_property(self, n, d, seed):
        if (n * d) % 2 == 1:
            n += 1
        g = random_regular_graph(n, d, seed=seed)
        assert g.n == n
        assert all(g.degree(v) == d for v in range(n))
        assert g.num_edges == n * d // 2

    def test_rejects_odd_total(self):
        with pytest.raises(GraphError):
            random_regular_graph(5, 3, seed=0)

    def test_rejects_d_ge_n(self):
        with pytest.raises(GraphError):
            random_regular_graph(4, 4, seed=0)

    def test_deterministic_given_seed(self):
        a = random_regular_graph(60, 3, seed=5)
        b = random_regular_graph(60, 3, seed=5)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_different_seeds_differ(self):
        a = random_regular_graph(60, 3, seed=5)
        b = random_regular_graph(60, 3, seed=6)
        assert sorted(a.edges()) != sorted(b.edges())


class TestHighGirth:
    @pytest.mark.parametrize("n,d,girth", [(300, 3, 7), (400, 3, 8), (300, 4, 6)])
    def test_girth_reached(self, n, d, girth):
        g = high_girth_regular_graph(n, d, girth, seed=3)
        measured = girth_up_to(g, girth - 1)
        assert measured is None
        assert all(g.degree(v) == d for v in range(n))
        assert g.is_connected()


class TestIrregularAndTrees:
    def test_max_degree_respected(self):
        g = random_graph_with_max_degree(200, 5, target_avg_degree=3.5, seed=1)
        assert g.max_degree() <= 5

    def test_tree_is_acyclic_connected(self):
        g = random_tree(50, seed=4)
        assert g.num_edges == 49
        assert g.is_connected()

    def test_tree_degree_cap(self):
        g = random_tree(60, seed=4, max_degree=3)
        assert g.max_degree() <= 3

    @pytest.mark.parametrize("seed", range(6))
    def test_gallai_tree_property(self, seed):
        g = random_gallai_tree(10, seed=seed)
        assert is_gallai_tree(g)
        assert g.is_connected()

    @pytest.mark.parametrize("seed", range(5))
    def test_random_nice_graph(self, seed):
        g = random_nice_graph(150, 4, seed=seed)
        assert is_nice(g)
        assert g.max_degree() == 4


class TestDisjointUnion:
    def test_union_counts(self):
        g = disjoint_union([cycle_graph(3), cycle_graph(4)])
        assert g.n == 7
        assert g.num_edges == 7
        assert len(g.connected_components()) == 2
