"""Generator tests, including hypothesis property tests on parameters."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs.generators import (
    complete_graph,
    complete_graph_minus_edge,
    cycle_graph,
    disjoint_union,
    high_girth_regular_graph,
    hypercube,
    path_graph,
    random_gallai_tree,
    random_graph_with_max_degree,
    random_nice_graph,
    random_regular_graph,
    random_tree,
    torus_grid,
)
from repro.graphs.properties import girth_up_to, is_gallai_tree, is_nice


class TestBasicFamilies:
    def test_cycle(self):
        g = cycle_graph(7)
        assert g.n == 7 and g.num_edges == 7
        assert all(g.degree(v) == 2 for v in range(7))

    def test_cycle_rejects_small(self):
        with pytest.raises(GraphError):
            cycle_graph(2)

    def test_path(self):
        g = path_graph(5)
        assert g.num_edges == 4

    def test_complete(self):
        g = complete_graph(6)
        assert g.num_edges == 15

    def test_complete_minus_edge(self):
        g = complete_graph_minus_edge(6)
        assert g.num_edges == 14
        assert not g.has_edge(0, 1)
        assert g.max_degree() == 5 and g.min_degree() == 4

    def test_torus_regular(self):
        g = torus_grid(5, 8)
        assert all(g.degree(v) == 4 for v in range(g.n))
        assert g.is_connected()

    def test_torus_rejects_small(self):
        with pytest.raises(GraphError):
            torus_grid(2, 5)

    def test_hypercube(self):
        g = hypercube(4)
        assert g.n == 16
        assert all(g.degree(v) == 4 for v in range(16))
        assert g.is_connected()


class TestRandomRegular:
    @given(
        n=st.integers(min_value=10, max_value=120),
        d=st.integers(min_value=2, max_value=7),
        seed=st.integers(min_value=0, max_value=1 << 20),
    )
    @settings(max_examples=40, deadline=None)
    def test_regularity_property(self, n, d, seed):
        if (n * d) % 2 == 1:
            n += 1
        g = random_regular_graph(n, d, seed=seed)
        assert g.n == n
        assert all(g.degree(v) == d for v in range(n))
        assert g.num_edges == n * d // 2

    def test_rejects_odd_total(self):
        with pytest.raises(GraphError):
            random_regular_graph(5, 3, seed=0)

    def test_rejects_d_ge_n(self):
        with pytest.raises(GraphError):
            random_regular_graph(4, 4, seed=0)

    def test_deterministic_given_seed(self):
        a = random_regular_graph(60, 3, seed=5)
        b = random_regular_graph(60, 3, seed=5)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_different_seeds_differ(self):
        a = random_regular_graph(60, 3, seed=5)
        b = random_regular_graph(60, 3, seed=6)
        assert sorted(a.edges()) != sorted(b.edges())


class TestConfigurationModelPaths:
    """The numpy pairing/repair path and the pure-Python fallback must be
    bit-identical — same edge list, same rng stream position."""

    @given(
        n=st.integers(min_value=8, max_value=120),
        d=st.integers(min_value=1, max_value=9),
        seed=st.integers(min_value=0, max_value=1 << 20),
    )
    @settings(max_examples=40, deadline=None)
    def test_vectorized_attempt_matches_python(self, n, d, seed):
        numpy = pytest.importorskip("numpy")
        from repro.graphs.generators import _attempt_python, _attempt_vectorized

        if (n * d) % 2 == 1:
            n += 1
        rng_a, rng_b = random.Random(seed), random.Random(seed)
        a = _attempt_python(n, d, rng_a, 50)
        b = _attempt_vectorized(n, d, rng_b, 50, numpy)
        assert a == b
        # both paths consumed exactly the same entropy
        assert rng_a.random() == rng_b.random()

    def test_generator_identical_without_numpy(self, monkeypatch):
        """random_regular_graph output must not depend on numpy presence."""
        import builtins

        with_np = random_regular_graph(400, 7, seed=11)
        real_import = builtins.__import__

        def no_numpy(name, *args, **kwargs):
            if name == "numpy":
                raise ImportError("forced for the fallback path")
            return real_import(name, *args, **kwargs)

        monkeypatch.setattr(builtins, "__import__", no_numpy)
        without_np = random_regular_graph(400, 7, seed=11)
        assert with_np.adj == without_np.adj


class TestCirculantFallback:
    """Property tests for _circulant_with_swaps — the dense/small escape
    hatch of random_regular_graph (d near n, including odd d): the swap
    phase must preserve exact d-regularity and simplicity, and the odd-d
    matching rung must stay valid for every even n (odd n//2 included)."""

    @given(
        n=st.integers(min_value=4, max_value=60),
        gap=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=1 << 20),
    )
    @settings(max_examples=60, deadline=None)
    def test_regular_simple_near_n(self, n, gap, seed):
        from repro.graphs.generators import _circulant_with_swaps

        d = n - gap  # the dense regime where the stub pairing collides
        if d < 1:
            return
        if (n * d) % 2 == 1:
            d -= 1
            if d < 1:
                return
        graph = _circulant_with_swaps(n, d, random.Random(seed))
        assert graph.n == n
        assert graph.num_edges == n * d // 2
        degrees = graph.degrees()
        assert degrees == [d] * n, f"swap phase broke d-regularity (n={n}, d={d})"
        edges = sorted(graph.edges())
        assert len(edges) == len(set(edges))
        assert all(u != v and 0 <= u < v < n for u, v in edges)

    @given(
        half=st.integers(min_value=2, max_value=25),
        seed=st.integers(min_value=0, max_value=1 << 20),
    )
    @settings(max_examples=40, deadline=None)
    def test_odd_d_matching_rung(self, half, seed):
        """Odd d on n = 2·half nodes (odd halves included): the +n/2
        matching must complete every degree exactly once."""
        from repro.graphs.generators import _circulant_with_swaps

        n = 2 * half
        d = min(n - 1, 2 * (half // 2) + 1)  # odd, < n
        graph = _circulant_with_swaps(n, d, random.Random(seed))
        assert graph.degrees() == [d] * n
        assert graph.num_edges == n * d // 2

    def test_seed_determinism(self):
        from repro.graphs.generators import _circulant_with_swaps

        for n, d in [(10, 9), (14, 11), (22, 19), (12, 7)]:
            a = _circulant_with_swaps(n, d, random.Random(5))
            b = _circulant_with_swaps(n, d, random.Random(5))
            c = _circulant_with_swaps(n, d, random.Random(6))
            assert sorted(a.edges()) == sorted(b.edges())
            assert a.degrees() == c.degrees() == [d] * n

    def test_dense_public_path_uses_fallback_and_stays_regular(self):
        # d = n-1 (complete graph) and d = n-2: stub pairing keeps
        # colliding, so random_regular_graph must reach the circulant
        # fallback and still deliver exact regularity.
        for n, d in [(8, 7), (10, 8), (12, 11)]:
            graph = random_regular_graph(n, d, seed=2)
            assert graph.degrees() == [d] * n


class TestHighGirth:
    @pytest.mark.parametrize("n,d,girth", [(300, 3, 7), (400, 3, 8), (300, 4, 6)])
    def test_girth_reached(self, n, d, girth):
        g = high_girth_regular_graph(n, d, girth, seed=3)
        measured = girth_up_to(g, girth - 1)
        assert measured is None
        assert all(g.degree(v) == d for v in range(n))
        assert g.is_connected()


class TestIrregularAndTrees:
    def test_max_degree_respected(self):
        g = random_graph_with_max_degree(200, 5, target_avg_degree=3.5, seed=1)
        assert g.max_degree() <= 5

    def test_tree_is_acyclic_connected(self):
        g = random_tree(50, seed=4)
        assert g.num_edges == 49
        assert g.is_connected()

    def test_tree_degree_cap(self):
        g = random_tree(60, seed=4, max_degree=3)
        assert g.max_degree() <= 3

    @pytest.mark.parametrize("seed", range(6))
    def test_gallai_tree_property(self, seed):
        g = random_gallai_tree(10, seed=seed)
        assert is_gallai_tree(g)
        assert g.is_connected()

    @pytest.mark.parametrize("seed", range(5))
    def test_random_nice_graph(self, seed):
        g = random_nice_graph(150, 4, seed=seed)
        assert is_nice(g)
        assert g.max_degree() == 4


class TestDisjointUnion:
    def test_union_counts(self):
        g = disjoint_union([cycle_graph(3), cycle_graph(4)])
        assert g.n == 7
        assert g.num_edges == 7
        assert len(g.connected_components()) == 2
