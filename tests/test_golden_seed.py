"""Golden-seed regression tests: exact colorings and round counts.

Performance refactors of the graph core and the hot algorithm loops must
not silently change *algorithm behaviour*.  These tests freeze the output
of fixed-seed :func:`repro.delta_color` runs on four named instances: the
full color vector (as a SHA-256 digest, plus the literal vector for the
smallest graph) and the exact LOCAL round total.

If a change legitimately alters the random execution path (e.g. a new
phase, a different tie-break rule), regenerate the constants with::

    PYTHONPATH=src python tests/test_golden_seed.py

and justify the behaviour change in the commit message.  A refactor that
is supposed to be behaviour-preserving must reproduce them bit for bit —
the CSR rewrite of the graph core did.
"""

from __future__ import annotations

import hashlib

import pytest

from repro import delta_color
from repro.graphs.generators import hypercube, random_regular_graph, torus_grid
from repro.graphs.named import petersen_graph
from repro.graphs.validation import validate_coloring


def _colors_digest(colors: list[int]) -> str:
    return hashlib.sha256(",".join(map(str, colors)).encode()).hexdigest()[:16]


def _graphs():
    return {
        "petersen": petersen_graph(),
        "torus_6x7": torus_grid(6, 7),
        "hypercube_4": hypercube(4),
        "rrg_64_5_s3": random_regular_graph(64, 5, seed=3),
    }


# (graph, seed) -> (rounds, colors digest).  Captured from the seed
# revision of this repository; regenerated for PR 5, whose batched
# randomness scheme (one randbytes draw per trial round / generator
# pairing instead of per-node randrange calls) legitimately moved the
# fixed-seed executions — outputs remain valid Δ-colorings, and the
# vectorized and pure-Python paths still reproduce each digest
# bit-for-bit (see tests/test_csr_equivalence.py).
GOLDEN = {
    ("petersen", 0): (74, "a0f687786434f188"),
    ("petersen", 1): (74, "a0f687786434f188"),
    ("torus_6x7", 0): (76, "7c98187d32601726"),
    ("torus_6x7", 1): (75, "b31fff3ccbb649ea"),
    ("hypercube_4", 0): (70, "dcb764b8792e5099"),
    ("hypercube_4", 1): (70, "3c051ad063a1528e"),
    ("rrg_64_5_s3", 0): (72, "4c7e6408f2414511"),
    ("rrg_64_5_s3", 1): (72, "81316e56c9eec9a0"),
}

# The smallest instance is additionally pinned as a literal vector so a
# digest-algorithm slip cannot mask a behaviour change.
PETERSEN_COLORS_SEED0 = [3, 2, 2, 1, 3, 3, 1, 2, 1, 1]


@pytest.mark.parametrize("name,seed", sorted(GOLDEN), ids=lambda p: str(p))
def test_golden_coloring(name, seed):
    graph = _graphs()[name]
    result = delta_color(graph, seed=seed)
    validate_coloring(graph, result.colors, max_colors=graph.max_degree())
    expected_rounds, expected_digest = GOLDEN[(name, seed)]
    assert result.rounds == expected_rounds, (
        f"{name} seed={seed}: round count drifted "
        f"({result.rounds} != {expected_rounds})"
    )
    assert _colors_digest(result.colors) == expected_digest, (
        f"{name} seed={seed}: coloring changed"
    )


def test_petersen_exact_vector():
    result = delta_color(petersen_graph(), seed=0)
    assert result.colors == PETERSEN_COLORS_SEED0


def test_same_seed_same_output():
    """delta_color is a pure function of (graph, seed)."""
    graph = _graphs()["torus_6x7"]
    first = delta_color(graph, seed=5)
    second = delta_color(graph, seed=5)
    assert first.colors == second.colors
    assert first.rounds == second.rounds
    assert first.phase_rounds == second.phase_rounds


if __name__ == "__main__":  # regenerate the golden table
    for (name, seed) in sorted({key for key in GOLDEN}):
        graph = _graphs()[name]
        result = delta_color(graph, seed=seed)
        print(
            f'    ("{name}", {seed}): '
            f'({result.rounds}, "{_colors_digest(result.colors)}"),'
        )
