"""Unit tests for the core Graph structure."""

import pytest

from repro.errors import GraphError
from repro.graphs.graph import Graph


class TestConstruction:
    def test_empty_graph(self):
        g = Graph(0)
        assert g.n == 0
        assert g.num_edges == 0
        assert g.max_degree() == 0
        assert g.min_degree() == 0

    def test_single_node(self):
        g = Graph(1)
        assert g.degree(0) == 0
        assert g.is_connected()

    def test_triangle(self):
        g = Graph(3, [(0, 1), (1, 2), (0, 2)])
        assert g.num_edges == 3
        assert g.degrees() == [2, 2, 2]
        assert g.max_degree() == 2

    def test_rejects_self_loop(self):
        with pytest.raises(GraphError, match="self-loop"):
            Graph(2, [(0, 0)])

    def test_rejects_duplicate_edge(self):
        with pytest.raises(GraphError, match="duplicate"):
            Graph(2, [(0, 1), (1, 0)])

    def test_rejects_out_of_range(self):
        with pytest.raises(GraphError, match="out of range"):
            Graph(2, [(0, 2)])

    def test_rejects_negative_n(self):
        with pytest.raises(GraphError):
            Graph(-1)

    def test_from_adjacency_roundtrip(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        g2 = Graph.from_adjacency(g.adj)
        assert sorted(g2.edges()) == sorted(g.edges())

    def test_from_adjacency_rejects_asymmetric(self):
        with pytest.raises(GraphError):
            Graph.from_adjacency([[1], []])


class TestQueries:
    def test_has_edge(self):
        g = Graph(3, [(0, 1)])
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert not g.has_edge(0, 2)

    def test_edges_iterates_once_per_edge(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
        edges = list(g.edges())
        assert len(edges) == 4
        assert all(u < v for u, v in edges)

    def test_adjacency_sets_cached(self):
        g = Graph(3, [(0, 1), (1, 2)])
        assert g.adjacency_sets() is g.adjacency_sets()

    def test_nodes_range(self):
        assert list(Graph(3).nodes()) == [0, 1, 2]


class TestConnectivity:
    def test_connected_components_split(self):
        g = Graph(5, [(0, 1), (2, 3)])
        comps = g.connected_components()
        assert comps == [[0, 1], [2, 3], [4]]

    def test_is_connected(self):
        assert Graph(3, [(0, 1), (1, 2)]).is_connected()
        assert not Graph(3, [(0, 1)]).is_connected()

    def test_is_connected_without(self):
        # path 0-1-2-3: removing 1 disconnects, removing 3 does not
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        assert not g.is_connected_without({1})
        assert g.is_connected_without({3})
        assert g.is_connected_without({0, 3})


class TestDerived:
    def test_subgraph_relabeling(self):
        g = Graph(5, [(0, 2), (2, 4), (1, 3)])
        sub, originals = g.subgraph([0, 2, 4])
        assert originals == [0, 2, 4]
        assert sorted(sub.edges()) == [(0, 1), (1, 2)]

    def test_subgraph_drops_outside_edges(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        sub, originals = g.subgraph([0, 1, 3])
        assert sorted(sub.edges()) == [(0, 1)]

    def test_complement_within(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        non_edges = g.complement_within([0, 1, 2, 3])
        assert (0, 2) in non_edges and (0, 3) in non_edges and (1, 3) in non_edges
        assert (0, 1) not in non_edges

    def test_subgraph_of_empty_set(self):
        g = Graph(3, [(0, 1)])
        sub, originals = g.subgraph([])
        assert sub.n == 0 and originals == []
