"""Tests for the graph layer's delta application.

``Graph.apply_updates`` (touched-rows-only CSR rewrite) and
``GraphBuilder.from_graph`` (the bulk rebuild path) must be exactly
equivalent to building the child graph from scratch — these are what the
incremental-coloring engine trusts for every update op.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs.generators import random_regular_graph
from repro.graphs.graph import Graph, GraphBuilder


def edge_set(graph: Graph) -> set[tuple[int, int]]:
    return set(graph.edges())


def assert_same_graph(actual: Graph, expected: Graph) -> None:
    assert actual.n == expected.n
    assert actual.num_edges == expected.num_edges
    assert edge_set(actual) == edge_set(expected)
    for v in range(actual.n):
        assert sorted(actual.neighbors(v)) == sorted(expected.neighbors(v))


class TestApplyUpdates:
    def test_insert_and_delete_roundtrip(self):
        g = Graph(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)])
        g2 = g.apply_updates(added=[(0, 3), (1, 4)], removed=[(2, 3)])
        assert edge_set(g2) == {(0, 1), (1, 2), (3, 4), (4, 5), (0, 3), (1, 4)}
        g3 = g2.apply_updates(added=[(2, 3)], removed=[(0, 3), (1, 4)])
        assert_same_graph(g3, g)

    def test_original_graph_untouched(self):
        g = Graph(4, [(0, 1), (1, 2)])
        before = edge_set(g)
        g.apply_updates(added=[(2, 3)], removed=[(0, 1)])
        assert edge_set(g) == before
        assert g.num_edges == 2

    def test_untouched_rows_preserve_neighbor_order(self):
        g = Graph(5, [(0, 3), (0, 1), (0, 2), (1, 2), (3, 4)])
        g2 = g.apply_updates(added=[(2, 4)], removed=[(3, 4)])
        # node 0 is untouched: its insertion-order row must be copied verbatim
        assert g2.neighbors(0) == g.neighbors(0) == [3, 1, 2]

    def test_degrees_and_max_degree_recomputed(self):
        g = random_regular_graph(32, 4, seed=1)
        u, v = next(g.edges())
        g2 = g.apply_updates(removed=[(u, v)])
        assert g2.degree(u) == 3 and g2.degree(v) == 3
        assert g2.max_degree() == 4

    def test_remove_missing_edge_rejected(self):
        g = Graph(4, [(0, 1)])
        with pytest.raises(GraphError, match="not present"):
            g.apply_updates(removed=[(1, 2)])

    def test_add_existing_edge_rejected(self):
        g = Graph(4, [(0, 1)])
        with pytest.raises(GraphError, match="already present"):
            g.apply_updates(added=[(1, 0)])

    def test_self_loop_and_range_rejected(self):
        g = Graph(4, [(0, 1)])
        with pytest.raises(GraphError, match="self-loop"):
            g.apply_updates(added=[(2, 2)])
        with pytest.raises(GraphError, match="out of range"):
            g.apply_updates(added=[(0, 9)])

    def test_batch_duplicates_rejected(self):
        g = Graph(4, [(0, 1)])
        with pytest.raises(GraphError, match="duplicate edge"):
            g.apply_updates(added=[(1, 2), (2, 1)])
        with pytest.raises(GraphError, match="removed twice"):
            g.apply_updates(removed=[(0, 1), (1, 0)])
        with pytest.raises(GraphError, match="both added and removed"):
            g.apply_updates(added=[(0, 1)], removed=[(0, 1)])

    def test_bulk_path_matches_scratch_build(self):
        # A delta touching most of the graph takes the GraphBuilder
        # rebuild branch; result must still be exact.
        g = random_regular_graph(24, 4, seed=3)
        removed = list(g.edges())[::2]
        child = g.apply_updates(removed=removed)
        expected = Graph(24, sorted(edge_set(g) - set(removed)))
        assert_same_graph(child, expected)

    def test_empty_delta_is_identity(self):
        g = random_regular_graph(16, 3, seed=2)
        assert_same_graph(g.apply_updates(), g)

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_matches_scratch_build(self, data):
        n = data.draw(st.integers(min_value=2, max_value=12), label="n")
        all_pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
        edges = data.draw(
            st.lists(st.sampled_from(all_pairs), unique=True, max_size=len(all_pairs)),
            label="edges",
        )
        g = Graph(n, edges)
        removable = list(edges)
        addable = [p for p in all_pairs if p not in set(edges)]
        removed = data.draw(
            st.lists(st.sampled_from(removable), unique=True) if removable
            else st.just([]),
            label="removed",
        )
        added = data.draw(
            st.lists(st.sampled_from(addable), unique=True) if addable
            else st.just([]),
            label="added",
        )
        child = g.apply_updates(added=added, removed=removed)
        expected = Graph(n, sorted((set(edges) - set(removed)) | set(added)))
        assert_same_graph(child, expected)


class TestGraphBuilderFromGraph:
    def test_roundtrip(self):
        g = random_regular_graph(20, 4, seed=5)
        assert_same_graph(GraphBuilder.from_graph(g).build(), g)

    def test_skip_keys(self):
        g = Graph(5, [(0, 1), (1, 2), (2, 3)])
        builder = GraphBuilder.from_graph(g, skip_keys={(1, 2)})
        assert edge_set(builder.build()) == {(0, 1), (2, 3)}

    def test_dedup_builder_knows_copied_edges(self):
        g = Graph(4, [(0, 1), (2, 3)])
        builder = GraphBuilder.from_graph(g, dedup=True)
        assert builder.has_edge(1, 0)
        assert not builder.add_edge(0, 1)  # duplicate refused, not raised
        assert builder.add_edge(1, 2)
        assert edge_set(builder.build()) == {(0, 1), (1, 2), (2, 3)}

    def test_grow_node_set(self):
        g = Graph(3, [(0, 1)])
        builder = GraphBuilder.from_graph(g)
        builder.add_edge(2, 5)
        child = builder.build()
        assert child.n == 6
        assert edge_set(child) == {(0, 1), (2, 5)}
