"""Tests for the happiness layers (phase 5)."""

import random

import pytest

from repro.core.happiness import build_happiness_layers
from repro.core.marking import default_selection_probability, marking_process
from repro.graphs.generators import high_girth_regular_graph, random_graph_with_max_degree
from repro.graphs.validation import UNCOLORED
from repro.local.rounds import RoundLedger


def _setup(graph, delta, seed=0, p=None, backoff=6):
    h_nodes = set(range(graph.n))
    colors = [UNCOLORED] * graph.n
    if p is None:
        p = default_selection_probability(delta, backoff)
    marking = marking_process(
        graph, h_nodes, colors, p, backoff, random.Random(seed), RoundLedger()
    )
    return h_nodes, colors, marking


class TestLayerStructure:
    @pytest.mark.parametrize("seed", range(5))
    def test_layers_partition_and_adjacency(self, seed):
        g = high_girth_regular_graph(800, 3, girth=8, seed=seed)
        h_nodes, colors, marking = _setup(g, 3, seed=seed)
        result = build_happiness_layers(g, colors, h_nodes, marking, 3, r=8, ledger=RoundLedger())
        seen = set()
        for i, layer in enumerate(result.layers):
            for v in layer:
                assert v not in seen
                seen.add(v)
                assert colors[v] == UNCOLORED
                if i >= 1:
                    previous = set(result.layers[i - 1])
                    assert any(u in previous for u in g.adj[v])
        # leftover is disjoint from layers and from marked
        assert not (result.leftover & seen)
        assert not (result.leftover & result.marked)

    def test_seeds_are_t_nodes_or_boundary(self):
        g = high_girth_regular_graph(600, 3, girth=8, seed=3)
        h_nodes, colors, marking = _setup(g, 3, seed=3)
        result = build_happiness_layers(g, colors, h_nodes, marking, 3, r=6, ledger=RoundLedger())
        layer0 = set(result.layers[0]) if result.layers else set()
        assert layer0 <= (result.t_nodes | result.boundary)

    def test_depth_bounded_by_2r(self):
        g = high_girth_regular_graph(600, 3, girth=8, seed=4)
        h_nodes, colors, marking = _setup(g, 3, seed=4)
        r = 5
        result = build_happiness_layers(g, colors, h_nodes, marking, 3, r=r, ledger=RoundLedger())
        assert len(result.layers) <= 2 * r + 1


class TestBoundaryHandling:
    def test_irregular_graph_boundary_nodes_are_seeds(self):
        g = random_graph_with_max_degree(500, 4, target_avg_degree=3.0, seed=5)
        h_nodes = set(range(g.n))
        colors = [UNCOLORED] * g.n
        marking = marking_process(
            g, h_nodes, colors, 0.01, 6, random.Random(5), RoundLedger()
        )
        result = build_happiness_layers(g, colors, h_nodes, marking, 4, r=6, ledger=RoundLedger())
        # every degree-deficient node is in the boundary seed set
        for v in range(g.n):
            if g.degree(v) < 4:
                assert v in result.boundary

    def test_marks_near_boundary_uncolored(self):
        g = random_graph_with_max_degree(500, 4, target_avg_degree=3.2, seed=6)
        h_nodes = set(range(g.n))
        colors = [UNCOLORED] * g.n
        marking = marking_process(
            g, h_nodes, colors, 0.02, 6, random.Random(6), RoundLedger()
        )
        result = build_happiness_layers(g, colors, h_nodes, marking, 4, r=6, ledger=RoundLedger())
        # irregular graph: boundary is everywhere, so all marks get wiped
        if marking.marked:
            assert result.uncolored_marks == len(marking.marked)
            assert result.marked == set()

    def test_surviving_marks_keep_color(self):
        g = high_girth_regular_graph(800, 3, girth=8, seed=7)
        h_nodes, colors, marking = _setup(g, 3, seed=7)
        result = build_happiness_layers(g, colors, h_nodes, marking, 3, r=6, ledger=RoundLedger())
        for m in result.marked:
            assert colors[m] == 1

    def test_rounds_charged(self):
        g = high_girth_regular_graph(600, 3, girth=8, seed=8)
        h_nodes, colors, marking = _setup(g, 3, seed=8)
        ledger = RoundLedger()
        build_happiness_layers(g, colors, h_nodes, marking, 3, r=7, ledger=ledger)
        assert ledger.total_rounds == 3 * 7
