"""Consistent-hash ring invariants (see src/repro/service/sharding/hashring.py).

Three properties carry the sharded service's correctness story:

* **uniformity** — with 128 vnodes per shard, no shard's share of a
  digest population strays more than ±20% from fair;
* **minimal remap** — adding/removing one shard moves ≈1/N of the
  keyspace, not all of it (the whole point of consistent hashing);
* **stability** — owner(digest) is a pure function of the membership
  set: same members (any insertion order) → same owner, forever.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.service.sharding import DEFAULT_VNODES, HashRing

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - optional dependency
    HAVE_HYPOTHESIS = False


def _digests(count: int, tag: str = "") -> list[str]:
    """Deterministic population of r1:-style content digests."""
    return [
        "r1:" + hashlib.sha256(f"{tag}:{i}".encode()).hexdigest()
        for i in range(count)
    ]


def test_empty_ring_rejects_lookup():
    ring = HashRing()
    with pytest.raises(ValueError):
        ring.owner("r1:deadbeef")


def test_membership_bookkeeping():
    ring = HashRing(["a", "b"])
    assert len(ring) == 2
    assert "a" in ring and "b" in ring
    assert ring.shards == ["a", "b"]
    with pytest.raises(ValueError):
        ring.add("a")
    ring.remove("a")
    assert "a" not in ring
    with pytest.raises(ValueError):
        ring.remove("a")


def test_single_shard_owns_everything():
    ring = HashRing(["only"])
    assert all(ring.owner(d) == "only" for d in _digests(200))


def test_uniformity_within_20_percent():
    """ISSUE acceptance: ±20% of fair share at 128 vnodes, 4 shards."""
    shards = [f"shard-{i}" for i in range(4)]
    ring = HashRing(shards, vnodes=DEFAULT_VNODES)
    counts = ring.spread(_digests(20_000))
    fair = 20_000 / len(shards)
    for shard in shards:
        share = counts.get(shard, 0)
        assert abs(share - fair) <= 0.20 * fair, (
            f"{shard} owns {share} of 20000 ({share / fair:.2f}x fair)"
        )


@pytest.mark.parametrize("n_before", [2, 4, 8])
def test_adding_shard_remaps_about_one_over_n(n_before: int):
    """Growing N → N+1 shards must move ≈1/(N+1) of keys (±60% slack:
    vnode placement is hash-random), and every move targets the new shard."""
    population = _digests(10_000, tag=f"grow-{n_before}")
    ring = HashRing([f"shard-{i}" for i in range(n_before)])
    before = {d: ring.owner(d) for d in population}
    ring.add("shard-new")
    moved = {d for d in population if ring.owner(d) != before[d]}
    expected = len(population) / (n_before + 1)
    assert 0.4 * expected <= len(moved) <= 1.6 * expected
    assert all(ring.owner(d) == "shard-new" for d in moved)


def test_removing_shard_remaps_only_its_keys():
    population = _digests(10_000, tag="shrink")
    ring = HashRing([f"shard-{i}" for i in range(4)])
    before = {d: ring.owner(d) for d in population}
    ring.remove("shard-2")
    for digest in population:
        if before[digest] != "shard-2":
            # Keys on surviving shards never move.
            assert ring.owner(digest) == before[digest]
        else:
            assert ring.owner(digest) != "shard-2"


def test_owner_is_insertion_order_independent():
    population = _digests(1_000, tag="order")
    forward = HashRing(["a", "b", "c", "d"])
    backward = HashRing(["d", "c", "b", "a"])
    rebuilt = HashRing(["b", "d"])
    rebuilt.add("a")
    rebuilt.add("c")
    for digest in population:
        assert forward.owner(digest) == backward.owner(digest)
        assert forward.owner(digest) == rebuilt.owner(digest)


if HAVE_HYPOTHESIS:

    @settings(max_examples=200, deadline=None)
    @given(
        digest=st.text(min_size=1, max_size=64),
        members=st.sets(
            st.sampled_from([f"s{i}" for i in range(6)]), min_size=1
        ),
    )
    def test_owner_stable_and_member(digest: str, members: set[str]):
        """owner() is deterministic across independently built rings and
        always returns a current member — for arbitrary digests."""
        one = HashRing(sorted(members))
        two = HashRing(sorted(members, reverse=True))
        owner = one.owner(digest)
        assert owner in members
        assert two.owner(digest) == owner
        assert one.owner(digest) == owner  # repeat call: no hidden state

else:  # pragma: no cover - hypothesis not installed in this env

    def test_owner_stable_and_member():
        pytest.skip("hypothesis not installed")
