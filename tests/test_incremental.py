"""Tests for the incremental-coloring engine (graph streams).

The contract under test: any sequence of accepted insert/delete ops
keeps :class:`repro.core.incremental.IncrementalColoring` *valid* —
bit-equivalent in validity to a fresh solve of the current graph (both
pass :func:`validate_coloring` against their palettes) — while rejected
ops raise typed errors and leave the engine untouched.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.harness import carve_matching
from repro.api import SolverConfig, solve, solve_incremental
from repro.core.incremental import IncrementalColoring
from repro.errors import (
    DeltaChangeError,
    EdgeAlreadyPresentError,
    EdgeNotPresentError,
)
from repro.graphs.generators import complete_graph, random_regular_graph
from repro.graphs.graph import Graph
from repro.graphs.validation import validate_coloring


def updatable_instance(n=48, delta=4, slack=6, seed=0):
    """A random Δ-regular graph minus a matching, solved: inserting a
    matching edge back keeps Δ (both endpoints have degree slack)."""
    full = random_regular_graph(n, delta, seed=seed)
    matching = carve_matching(full, slack)
    base = full.apply_updates(removed=matching)
    return base, matching, solve(base, seed=seed)


class TestEngineBasics:
    def test_conflict_free_insert_recolors_nothing(self):
        base, matching, result = updatable_instance()
        engine = IncrementalColoring.from_result(base, result, validate=True)
        u, v = next(e for e in matching if result.colors[e[0]] != result.colors[e[1]])
        outcome = engine.insert_edge(u, v)
        assert outcome.conflicts == 0
        assert outcome.recolored_count == 0
        assert not outcome.full_resolve
        assert engine.graph.has_edge(u, v)

    def test_delete_never_conflicts(self):
        base, matching, result = updatable_instance()
        engine = IncrementalColoring.from_result(base, result, validate=True)
        u, v = next(base.edges())
        outcome = engine.delete_edge(u, v)
        assert outcome.conflicts == 0
        assert outcome.recolored_count == 0
        assert not engine.graph.has_edge(u, v)

    def test_conflicting_insert_is_repaired_locally(self):
        base, matching, result = updatable_instance()
        engine = IncrementalColoring.from_result(base, result, validate=True)
        colors = engine.colors
        slack = sorted({x for e in matching for x in e})
        pair = next(
            (a, b)
            for i, a in enumerate(slack)
            for b in slack[i + 1:]
            if colors[a] == colors[b] and not base.has_edge(a, b)
        )
        outcome = engine.insert_edge(*pair)
        assert outcome.conflicts == 1
        assert not outcome.full_resolve
        assert outcome.recolored_count >= 1
        assert sum(outcome.repair_modes.values()) >= 1
        validate_coloring(engine.graph, engine.colors, max_colors=engine.palette)

    def test_brooks_rung_fires_when_greedy_cannot(self):
        # Search a small seed range for an insert whose uncolored endpoint
        # has no free color: the Theorem 5 token walk (not greedy) must
        # repair it without a full re-solve.
        for seed in range(25):
            base, matching, result = updatable_instance(seed=seed)
            colors = list(result.colors)
            slack = sorted({x for e in matching for x in e})
            for i, a in enumerate(slack):
                for b in slack[i + 1:]:
                    if colors[a] != colors[b] or base.has_edge(a, b):
                        continue
                    engine = IncrementalColoring.from_result(
                        base, result, validate=True
                    )
                    outcome = engine.insert_edge(a, b)
                    if outcome.full_resolve or not outcome.repair_modes:
                        continue
                    if set(outcome.repair_modes) - {"greedy"}:
                        validate_coloring(
                            engine.graph, engine.colors, max_colors=engine.palette
                        )
                        assert outcome.max_repair_radius >= 1
                        return
        pytest.fail("no insert exercised the Brooks repair rung")

    def test_batch_update_shares_conflict_endpoints(self):
        base, matching, result = updatable_instance(slack=8)
        engine = IncrementalColoring.from_result(base, result, validate=True)
        outcome = engine.batch_update(added=matching[:4], removed=[next(base.edges())])
        assert outcome.edges_added == 4 and outcome.edges_removed == 1
        validate_coloring(engine.graph, engine.colors, max_colors=engine.palette)
        # minimality: never more uncolored nodes than conflicts
        assert outcome.recolored_count <= max(
            1, outcome.conflicts * (engine.palette + 1)
        )

    def test_totals_accumulate(self):
        base, matching, result = updatable_instance()
        engine = IncrementalColoring.from_result(base, result)
        engine.insert_edge(*matching[0])
        engine.delete_edge(*matching[0])
        assert engine.totals["ops"] == 2
        assert engine.totals["edges_added"] == 1
        assert engine.totals["edges_removed"] == 1


class TestTypedRejections:
    def test_delete_nonexistent_edge(self):
        base, matching, result = updatable_instance()
        engine = IncrementalColoring.from_result(base, result)
        u, v = matching[0]  # carved out, so currently absent
        before = engine.colors
        with pytest.raises(EdgeNotPresentError):
            engine.delete_edge(u, v)
        assert engine.graph is base and engine.colors == before
        assert engine.totals["ops"] == 0

    def test_insert_existing_edge(self):
        base, matching, result = updatable_instance()
        engine = IncrementalColoring.from_result(base, result)
        u, v = next(base.edges())
        with pytest.raises(EdgeAlreadyPresentError):
            engine.insert_edge(u, v)
        with pytest.raises(EdgeAlreadyPresentError):
            # duplicated within one batch
            engine.batch_update(added=[matching[0], matching[0]])
        assert engine.graph is base

    def test_delta_raising_insert_rejected_without_resolve(self):
        # Every node of a Δ-regular graph is at degree Δ: any insert
        # raises Δ and must be rejected when re-solves are disallowed.
        graph = random_regular_graph(24, 4, seed=1)
        result = solve(graph, seed=1)
        engine = IncrementalColoring.from_result(
            graph, result, allow_resolve=False
        )
        nonedge = next(
            (u, v)
            for u in range(graph.n)
            for v in range(u + 1, graph.n)
            if not graph.has_edge(u, v)
        )
        with pytest.raises(DeltaChangeError):
            engine.insert_edge(*nonedge)
        assert engine.graph is graph
        assert engine.delta == 4 and engine.palette == result.palette


class TestFullResolveFallback:
    def test_delta_change_triggers_resolve(self):
        graph = random_regular_graph(24, 4, seed=1)
        result = solve(graph, seed=1)
        engine = IncrementalColoring.from_result(graph, result, validate=True)
        nonedge = next(
            (u, v)
            for u in range(graph.n)
            for v in range(u + 1, graph.n)
            if not graph.has_edge(u, v)
        )
        outcome = engine.insert_edge(*nonedge)
        assert outcome.full_resolve
        assert outcome.resolve_reason.startswith("delta")
        assert engine.delta == 5
        validate_coloring(engine.graph, engine.colors, max_colors=engine.palette)

    def test_repair_stall_falls_back_to_resolve(self):
        # K4 minus an edge is Δ-colorable (Δ=3); inserting the missing
        # edge completes K4, which is not — Δ stays 3, repair must stall,
        # and the resolve rung re-colors with the component optimum χ=4.
        graph = complete_graph(4).apply_updates(removed=[(0, 1)])
        result = solve(graph, algorithm="components", seed=0)
        assert result.palette == 3
        engine = IncrementalColoring.from_result(
            graph, result, algorithm="deterministic", validate=True
        )
        outcome = engine.insert_edge(0, 1)
        assert outcome.full_resolve
        assert engine.palette == 4
        validate_coloring(engine.graph, engine.colors, max_colors=engine.palette)

    def test_components_seed_skips_repair_ladder(self):
        # `components` results carry per-component χ palettes the repair
        # machinery cannot maintain; conflicting updates must resolve.
        base, matching, _ = updatable_instance()
        result = solve(base, algorithm="components", seed=0)
        engine = IncrementalColoring.from_result(base, result, validate=True)
        colors = engine.colors
        slack = sorted({x for e in matching for x in e})
        pair = next(
            (a, b)
            for i, a in enumerate(slack)
            for b in slack[i + 1:]
            if colors[a] == colors[b] and not base.has_edge(a, b)
        )
        outcome = engine.insert_edge(*pair)
        assert outcome.full_resolve
        assert outcome.resolve_reason == "algorithm-unsupported"


class TestDirtyRegion:
    """The dirty-region tracking behind the O(vol(region)) validation."""

    def test_dirty_region_covers_changes_and_added_endpoints(self):
        base, matching, result = updatable_instance()
        engine = IncrementalColoring.from_result(base, result, validate=True)
        before = engine.colors
        u, v = matching[0]
        engine.insert_edge(u, v)
        after = engine.colors
        dirty = set(engine.last_dirty_region)
        changed = {w for w in range(base.n) if before[w] != after[w]}
        assert changed <= dirty
        assert {u, v} <= dirty

    def test_full_resolve_reports_no_region(self):
        base, matching, result = updatable_instance()
        engine = IncrementalColoring.from_result(base, result, validate=True)
        # deleting edges at one node lowers Δ -> full re-solve
        victim = next(v for v in range(base.n) if base.degree(v) == engine.delta)
        for w in list(base.adj[victim])[1:]:
            engine.delete_edge(victim, w)
        if engine.totals["full_resolves"]:
            assert engine.last_dirty_region is None

    def test_region_validation_stream_matches_full_validation(self):
        """A long mixed stream with per-op region validation on: the end
        state must also pass the full O(n + m) validator — region checks
        never let an invalid intermediate state survive silently."""
        base, matching, result = updatable_instance(n=64, delta=4, slack=8)
        engine = IncrementalColoring.from_result(base, result, validate=True)
        for i, (u, v) in enumerate(matching):
            engine.insert_edge(u, v)
            if i % 2:
                engine.delete_edge(u, v)
        validate_coloring(
            engine.graph, engine.colors, max_colors=engine.palette or None
        )

    def test_engine_region_validation_catches_bad_repair(self, monkeypatch):
        """If the repair rung produced a conflicting color, the dirty
        region contains that node, so region validation must catch it."""
        from repro.errors import ColoringError

        base, matching, result = updatable_instance()
        engine = IncrementalColoring.from_result(base, result, validate=True)
        u, v = next(
            e for e in matching if result.colors[e[0]] == result.colors[e[1]]
        )

        def sabotage(graph, colors, uncolor, outcome):
            for w in uncolor:
                colors[w] = colors[
                    next(x for x in graph.adj[w] if colors[x] != 0)
                ]

        monkeypatch.setattr(engine, "_repair", sabotage)
        with pytest.raises(ColoringError):
            engine.insert_edge(u, v)

    def test_facade_region_validation_catches_bad_repair(self, monkeypatch):
        from repro.core import incremental as inc_mod
        from repro.errors import ColoringError

        base, matching, result = updatable_instance()
        u, v = next(
            e for e in matching if result.colors[e[0]] == result.colors[e[1]]
        )

        def sabotage(self, graph, colors, uncolor, outcome):
            for w in uncolor:
                colors[w] = colors[
                    next(x for x in graph.adj[w] if colors[x] != 0)
                ]

        monkeypatch.setattr(inc_mod.IncrementalColoring, "_repair", sabotage)
        with pytest.raises(ColoringError):
            solve_incremental(base, result, edges_added=[(u, v)])


class TestSolveIncrementalFacade:
    def test_returns_chainable_child(self):
        base, matching, result = updatable_instance()
        first = solve_incremental(base, result, edges_added=[matching[0]])
        assert first.graph.has_edge(*matching[0])
        assert first.result.stats["incremental"]["op"] == "batch"
        validate_coloring(
            first.graph, list(first.result.colors),
            max_colors=first.result.palette,
        )
        second = solve_incremental(
            first.graph, first.result,
            edges_added=[matching[1]], edges_removed=[matching[0]],
        )
        assert not second.graph.has_edge(*matching[0])
        assert second.graph.has_edge(*matching[1])

    def test_validate_flag_honoured(self):
        base, matching, result = updatable_instance()
        out = solve_incremental(
            base, result, edges_added=[matching[0]],
            config=SolverConfig(validate=False),
        )
        assert out.result.n == base.n

    def test_typed_errors_pass_through(self):
        base, matching, result = updatable_instance()
        with pytest.raises(EdgeNotPresentError):
            solve_incremental(base, result, edges_removed=[matching[0]])


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_random_stream_stays_valid(data):
    """Any accepted op sequence keeps the engine bit-equivalent in
    validity to a fresh solve: after every op the maintained coloring
    validates against the maintained palette, exactly as a fresh solve's
    output validates against its palette — and the maintained edge set
    matches the reference exactly."""
    n = data.draw(st.integers(min_value=4, max_value=14), label="n")
    all_pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = data.draw(
        st.lists(
            st.sampled_from(all_pairs), unique=True, min_size=1,
            max_size=len(all_pairs),
        ),
        label="edges",
    )
    graph = Graph(n, edges)
    result = solve(graph, algorithm="auto", seed=0)
    engine = IncrementalColoring.from_result(graph, result, validate=True)
    reference = set(edges)
    ops = data.draw(st.integers(min_value=1, max_value=8), label="ops")
    for _ in range(ops):
        present = sorted(reference)
        absent = sorted(set(all_pairs) - reference)
        do_insert = data.draw(st.booleans(), label="insert?") if absent else False
        if not present:
            do_insert = True
        if do_insert and absent:
            edge = data.draw(st.sampled_from(absent), label="edge")
            engine.insert_edge(*edge)
            reference.add(edge)
        elif present:
            edge = data.draw(st.sampled_from(present), label="edge")
            engine.delete_edge(*edge)
            reference.discard(edge)
        # engine.validate already re-validated; check the stronger claims:
        assert set(engine.graph.edges()) == reference
        validate_coloring(engine.graph, engine.colors, max_colors=engine.palette)
        fresh = solve(engine.graph, algorithm="auto", seed=0)
        validate_coloring(engine.graph, list(fresh.colors), max_colors=fresh.palette)
