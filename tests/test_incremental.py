"""Tests for the incremental-coloring engine (graph streams).

The contract under test: any sequence of accepted insert/delete ops
keeps :class:`repro.core.incremental.IncrementalColoring` *valid* —
bit-equivalent in validity to a fresh solve of the current graph (both
pass :func:`validate_coloring` against their palettes) — while rejected
ops raise typed errors and leave the engine untouched.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.harness import carve_matching
from repro.api import SolverConfig, solve, solve_incremental
from repro.core.incremental import IncrementalColoring
from repro.errors import (
    ConflictingUpdateError,
    DeltaChangeError,
    EdgeAlreadyPresentError,
    EdgeNotPresentError,
)
from repro.graphs.generators import complete_graph, random_regular_graph
from repro.graphs.graph import Graph
from repro.graphs.validation import validate_coloring


def updatable_instance(n=48, delta=4, slack=6, seed=0):
    """A random Δ-regular graph minus a matching, solved: inserting a
    matching edge back keeps Δ (both endpoints have degree slack)."""
    full = random_regular_graph(n, delta, seed=seed)
    matching = carve_matching(full, slack)
    base = full.apply_updates(removed=matching)
    return base, matching, solve(base, seed=seed)


class TestEngineBasics:
    def test_conflict_free_insert_recolors_nothing(self):
        base, matching, result = updatable_instance()
        engine = IncrementalColoring.from_result(base, result, validate=True)
        u, v = next(e for e in matching if result.colors[e[0]] != result.colors[e[1]])
        outcome = engine.insert_edge(u, v)
        assert outcome.conflicts == 0
        assert outcome.recolored_count == 0
        assert not outcome.full_resolve
        assert engine.graph.has_edge(u, v)

    def test_delete_never_conflicts(self):
        base, matching, result = updatable_instance()
        engine = IncrementalColoring.from_result(base, result, validate=True)
        u, v = next(base.edges())
        outcome = engine.delete_edge(u, v)
        assert outcome.conflicts == 0
        assert outcome.recolored_count == 0
        assert not engine.graph.has_edge(u, v)

    def test_conflicting_insert_is_repaired_locally(self):
        base, matching, result = updatable_instance()
        engine = IncrementalColoring.from_result(base, result, validate=True)
        colors = engine.colors
        slack = sorted({x for e in matching for x in e})
        pair = next(
            (a, b)
            for i, a in enumerate(slack)
            for b in slack[i + 1:]
            if colors[a] == colors[b] and not base.has_edge(a, b)
        )
        outcome = engine.insert_edge(*pair)
        assert outcome.conflicts == 1
        assert not outcome.full_resolve
        assert outcome.recolored_count >= 1
        assert sum(outcome.repair_modes.values()) >= 1
        validate_coloring(engine.graph, engine.colors, max_colors=engine.palette)

    def test_brooks_rung_fires_when_greedy_cannot(self):
        # Search a small seed range for an insert whose uncolored endpoint
        # has no free color: the Theorem 5 token walk (not greedy) must
        # repair it without a full re-solve.
        for seed in range(25):
            base, matching, result = updatable_instance(seed=seed)
            colors = list(result.colors)
            slack = sorted({x for e in matching for x in e})
            for i, a in enumerate(slack):
                for b in slack[i + 1:]:
                    if colors[a] != colors[b] or base.has_edge(a, b):
                        continue
                    engine = IncrementalColoring.from_result(
                        base, result, validate=True
                    )
                    outcome = engine.insert_edge(a, b)
                    if outcome.full_resolve or not outcome.repair_modes:
                        continue
                    if set(outcome.repair_modes) - {"greedy"}:
                        validate_coloring(
                            engine.graph, engine.colors, max_colors=engine.palette
                        )
                        assert outcome.max_repair_radius >= 1
                        return
        pytest.fail("no insert exercised the Brooks repair rung")

    def test_batch_update_shares_conflict_endpoints(self):
        base, matching, result = updatable_instance(slack=8)
        engine = IncrementalColoring.from_result(base, result, validate=True)
        outcome = engine.batch_update(added=matching[:4], removed=[next(base.edges())])
        assert outcome.edges_added == 4 and outcome.edges_removed == 1
        validate_coloring(engine.graph, engine.colors, max_colors=engine.palette)
        # minimality: never more uncolored nodes than conflicts
        assert outcome.recolored_count <= max(
            1, outcome.conflicts * (engine.palette + 1)
        )

    def test_totals_accumulate(self):
        base, matching, result = updatable_instance()
        engine = IncrementalColoring.from_result(base, result)
        engine.insert_edge(*matching[0])
        engine.delete_edge(*matching[0])
        assert engine.totals["ops"] == 2
        assert engine.totals["edges_added"] == 1
        assert engine.totals["edges_removed"] == 1


class TestTypedRejections:
    def test_delete_nonexistent_edge(self):
        base, matching, result = updatable_instance()
        engine = IncrementalColoring.from_result(base, result)
        u, v = matching[0]  # carved out, so currently absent
        before = engine.colors
        with pytest.raises(EdgeNotPresentError):
            engine.delete_edge(u, v)
        assert engine.graph is base and engine.colors == before
        assert engine.totals["ops"] == 0

    def test_insert_existing_edge(self):
        base, matching, result = updatable_instance()
        engine = IncrementalColoring.from_result(base, result)
        u, v = next(base.edges())
        with pytest.raises(EdgeAlreadyPresentError):
            engine.insert_edge(u, v)
        with pytest.raises(EdgeAlreadyPresentError):
            # duplicated within one batch
            engine.batch_update(added=[matching[0], matching[0]])
        assert engine.graph is base

    def test_double_delete_in_one_batch(self):
        # Both copies name a *present* edge, so per-edge presence checks
        # pass — the batch-level dedup must reject with the typed error,
        # in either key orientation, leaving the engine bit-identical.
        base, matching, result = updatable_instance()
        engine = IncrementalColoring.from_result(base, result)
        u, v = next(base.edges())
        before = engine.colors
        for second in [(u, v), (v, u)]:
            with pytest.raises(EdgeNotPresentError):
                engine.batch_update(removed=[(u, v), second])
        assert engine.graph is base
        assert engine.colors == before
        assert engine.totals["ops"] == 0

    def test_add_and_remove_same_key_in_one_batch(self):
        # Neither an insert nor a delete: must be the dedicated typed
        # error, not a misleading EdgeAlreadyPresentError.
        base, matching, result = updatable_instance()
        engine = IncrementalColoring.from_result(base, result)
        u, v = next(base.edges())
        before = engine.colors
        with pytest.raises(ConflictingUpdateError):
            engine.batch_update(added=[(u, v)], removed=[(u, v)])
        with pytest.raises(ConflictingUpdateError):
            # reversed orientation names the same undirected key
            engine.batch_update(added=[(v, u)], removed=[(u, v)])
        with pytest.raises(ConflictingUpdateError):
            # the conflict wins even when the key is absent from the
            # graph — batch self-consistency dominates presence checks
            engine.batch_update(added=[matching[0]], removed=[matching[0]])
        assert engine.graph is base and engine.colors == before
        assert engine.totals["ops"] == 0

    def test_mixed_valid_invalid_batch_rejected_atomically(self):
        # A batch with three fine edges and one bad one must reject as a
        # whole — no partial application, engine state bit-identical.
        base, matching, result = updatable_instance(slack=6)
        engine = IncrementalColoring.from_result(base, result)
        before = engine.colors
        edges_before = set(base.edges())
        with pytest.raises(EdgeNotPresentError):
            engine.batch_update(
                added=matching[:3], removed=[matching[3]]  # absent: carved out
            )
        with pytest.raises(EdgeAlreadyPresentError):
            engine.batch_update(added=matching[:3] + [next(base.edges())])
        assert engine.graph is base
        assert set(engine.graph.edges()) == edges_before
        assert engine.colors == before
        assert engine.totals["ops"] == 0

    def test_dynamic_backend_rejections_leave_state_untouched(self):
        # Same contract on the in-place backend, where a sloppy
        # implementation could leave a half-applied delta behind.
        base, matching, result = updatable_instance()
        engine = IncrementalColoring.from_result(base, result, backend="dynamic")
        u, v = next(base.edges())
        before = engine.colors
        edges_before = set(engine.graph.edges())
        for raiser in [
            lambda: engine.batch_update(removed=[(u, v), (v, u)]),
            lambda: engine.batch_update(added=[(u, v)], removed=[(u, v)]),
            lambda: engine.batch_update(added=matching[:2] + [(u, v)]),
            lambda: engine.delete_edge(*matching[0]),
        ]:
            with pytest.raises(
                (EdgeNotPresentError, EdgeAlreadyPresentError, ConflictingUpdateError)
            ):
                raiser()
        assert set(engine.graph.edges()) == edges_before
        assert engine.colors == before
        assert engine.totals["ops"] == 0

    def test_dynamic_backend_delta_change_rejected_exactly(self):
        # allow_resolve=False on the dynamic backend: the Δ-move check
        # runs before mutation, so rejection is exact.
        graph = random_regular_graph(24, 4, seed=1)
        result = solve(graph, seed=1)
        engine = IncrementalColoring.from_result(
            graph, result, backend="dynamic", allow_resolve=False
        )
        nonedge = next(
            (u, v)
            for u in range(graph.n)
            for v in range(u + 1, graph.n)
            if not graph.has_edge(u, v)
        )
        before = engine.colors
        with pytest.raises(DeltaChangeError):
            engine.insert_edge(*nonedge)
        assert set(engine.graph.edges()) == set(graph.edges())
        assert engine.colors == before and engine.delta == 4

    def test_delta_raising_insert_rejected_without_resolve(self):
        # Every node of a Δ-regular graph is at degree Δ: any insert
        # raises Δ and must be rejected when re-solves are disallowed.
        graph = random_regular_graph(24, 4, seed=1)
        result = solve(graph, seed=1)
        engine = IncrementalColoring.from_result(
            graph, result, allow_resolve=False
        )
        nonedge = next(
            (u, v)
            for u in range(graph.n)
            for v in range(u + 1, graph.n)
            if not graph.has_edge(u, v)
        )
        with pytest.raises(DeltaChangeError):
            engine.insert_edge(*nonedge)
        assert engine.graph is graph
        assert engine.delta == 4 and engine.palette == result.palette


class TestFullResolveFallback:
    def test_delta_change_triggers_resolve(self):
        graph = random_regular_graph(24, 4, seed=1)
        result = solve(graph, seed=1)
        engine = IncrementalColoring.from_result(graph, result, validate=True)
        nonedge = next(
            (u, v)
            for u in range(graph.n)
            for v in range(u + 1, graph.n)
            if not graph.has_edge(u, v)
        )
        outcome = engine.insert_edge(*nonedge)
        assert outcome.full_resolve
        assert outcome.resolve_reason.startswith("delta")
        assert engine.delta == 5
        validate_coloring(engine.graph, engine.colors, max_colors=engine.palette)

    def test_repair_stall_falls_back_to_resolve(self):
        # K4 minus an edge is Δ-colorable (Δ=3); inserting the missing
        # edge completes K4, which is not — Δ stays 3, repair must stall,
        # and the resolve rung re-colors with the component optimum χ=4.
        graph = complete_graph(4).apply_updates(removed=[(0, 1)])
        result = solve(graph, algorithm="components", seed=0)
        assert result.palette == 3
        engine = IncrementalColoring.from_result(
            graph, result, algorithm="deterministic", validate=True
        )
        outcome = engine.insert_edge(0, 1)
        assert outcome.full_resolve
        assert engine.palette == 4
        validate_coloring(engine.graph, engine.colors, max_colors=engine.palette)

    def test_components_seed_skips_repair_ladder(self):
        # `components` results carry per-component χ palettes the repair
        # machinery cannot maintain; conflicting updates must resolve.
        base, matching, _ = updatable_instance()
        result = solve(base, algorithm="components", seed=0)
        engine = IncrementalColoring.from_result(base, result, validate=True)
        colors = engine.colors
        slack = sorted({x for e in matching for x in e})
        pair = next(
            (a, b)
            for i, a in enumerate(slack)
            for b in slack[i + 1:]
            if colors[a] == colors[b] and not base.has_edge(a, b)
        )
        outcome = engine.insert_edge(*pair)
        assert outcome.full_resolve
        assert outcome.resolve_reason == "algorithm-unsupported"


class TestDirtyRegion:
    """The dirty-region tracking behind the O(vol(region)) validation."""

    def test_dirty_region_covers_changes_and_added_endpoints(self):
        base, matching, result = updatable_instance()
        engine = IncrementalColoring.from_result(base, result, validate=True)
        before = engine.colors
        u, v = matching[0]
        engine.insert_edge(u, v)
        after = engine.colors
        dirty = set(engine.last_dirty_region)
        changed = {w for w in range(base.n) if before[w] != after[w]}
        assert changed <= dirty
        assert {u, v} <= dirty

    def test_full_resolve_reports_no_region(self):
        base, matching, result = updatable_instance()
        engine = IncrementalColoring.from_result(base, result, validate=True)
        # deleting edges at one node lowers Δ -> full re-solve
        victim = next(v for v in range(base.n) if base.degree(v) == engine.delta)
        for w in list(base.adj[victim])[1:]:
            engine.delete_edge(victim, w)
        if engine.totals["full_resolves"]:
            assert engine.last_dirty_region is None

    def test_region_validation_stream_matches_full_validation(self):
        """A long mixed stream with per-op region validation on: the end
        state must also pass the full O(n + m) validator — region checks
        never let an invalid intermediate state survive silently."""
        base, matching, result = updatable_instance(n=64, delta=4, slack=8)
        engine = IncrementalColoring.from_result(base, result, validate=True)
        for i, (u, v) in enumerate(matching):
            engine.insert_edge(u, v)
            if i % 2:
                engine.delete_edge(u, v)
        validate_coloring(
            engine.graph, engine.colors, max_colors=engine.palette or None
        )

    def test_engine_region_validation_catches_bad_repair(self, monkeypatch):
        """If the repair rung produced a conflicting color, the dirty
        region contains that node, so region validation must catch it."""
        from repro.errors import ColoringError

        base, matching, result = updatable_instance()
        engine = IncrementalColoring.from_result(base, result, validate=True)
        u, v = next(
            e for e in matching if result.colors[e[0]] == result.colors[e[1]]
        )

        def sabotage(graph, colors, uncolor, outcome):
            for w in uncolor:
                colors[w] = colors[
                    next(x for x in graph.adj[w] if colors[x] != 0)
                ]

        monkeypatch.setattr(engine, "_repair", sabotage)
        with pytest.raises(ColoringError):
            engine.insert_edge(u, v)

    def test_facade_region_validation_catches_bad_repair(self, monkeypatch):
        from repro.core import incremental as inc_mod
        from repro.errors import ColoringError

        base, matching, result = updatable_instance()
        u, v = next(
            e for e in matching if result.colors[e[0]] == result.colors[e[1]]
        )

        def sabotage(self, graph, colors, uncolor, outcome):
            for w in uncolor:
                colors[w] = colors[
                    next(x for x in graph.adj[w] if colors[x] != 0)
                ]

        monkeypatch.setattr(inc_mod.IncrementalColoring, "_repair", sabotage)
        with pytest.raises(ColoringError):
            solve_incremental(base, result, edges_added=[(u, v)])


class TestSolveIncrementalFacade:
    def test_returns_chainable_child(self):
        base, matching, result = updatable_instance()
        first = solve_incremental(base, result, edges_added=[matching[0]])
        assert first.graph.has_edge(*matching[0])
        assert first.result.stats["incremental"]["op"] == "batch"
        validate_coloring(
            first.graph, list(first.result.colors),
            max_colors=first.result.palette,
        )
        second = solve_incremental(
            first.graph, first.result,
            edges_added=[matching[1]], edges_removed=[matching[0]],
        )
        assert not second.graph.has_edge(*matching[0])
        assert second.graph.has_edge(*matching[1])

    def test_validate_flag_honoured(self):
        base, matching, result = updatable_instance()
        out = solve_incremental(
            base, result, edges_added=[matching[0]],
            config=SolverConfig(validate=False),
        )
        assert out.result.n == base.n

    def test_typed_errors_pass_through(self):
        base, matching, result = updatable_instance()
        with pytest.raises(EdgeNotPresentError):
            solve_incremental(base, result, edges_removed=[matching[0]])


class TestDynamicBackend:
    """The updatable-CSR engine path pinned against the immutable one."""

    def test_auto_backend_converts_after_sustained_ops(self):
        from repro.graphs.dynamic import DynamicGraph

        base, matching, result = updatable_instance(slack=6)
        engine = IncrementalColoring.from_result(base, result)
        assert not isinstance(engine._graph, DynamicGraph)
        for u, v in matching[:3]:
            engine.insert_edge(u, v)
        assert isinstance(engine._graph, DynamicGraph)
        # the public view stays an immutable Graph
        assert not isinstance(engine.graph, DynamicGraph)

    def test_one_shot_facade_stays_immutable(self):
        from repro.graphs.dynamic import DynamicGraph

        base, matching, result = updatable_instance()
        out = solve_incremental(base, result, edges_added=[matching[0]])
        assert not isinstance(out.graph, DynamicGraph)

    def test_backends_pinned_identical_on_stream(self):
        """Both backends process the same mixed stream: identical graphs
        (CSR bit for bit), identical colorings, identical totals."""
        base, matching, result = updatable_instance(n=64, delta=4, slack=8)
        imm = IncrementalColoring.from_result(
            base, result, backend="immutable", validate=True
        )
        dyn = IncrementalColoring.from_result(
            base, result, backend="dynamic", validate=True
        )
        for i, (u, v) in enumerate(matching):
            a = imm.insert_edge(u, v).as_dict()
            b = dyn.insert_edge(u, v).as_dict()
            for payload in (a, b):
                payload.pop("wall_time_s")
                payload.pop("rung_wall_s")
            assert a == b
            if i % 2:
                imm.delete_edge(u, v)
                dyn.delete_edge(u, v)
            assert imm.colors == dyn.colors
            assert imm.graph.csr() == dyn.graph.csr()
            assert imm.delta == dyn.delta and imm.palette == dyn.palette
        totals_imm = dict(imm.totals)
        totals_dyn = dict(dyn.totals)
        assert totals_imm == totals_dyn

    def test_dynamic_backend_full_resolve_path(self):
        # Δ-raising insert on the dynamic backend: resolve rung, state
        # consistent afterwards and further ops still work.
        graph = random_regular_graph(24, 4, seed=1)
        result = solve(graph, seed=1)
        engine = IncrementalColoring.from_result(
            graph, result, backend="dynamic", validate=True
        )
        nonedge = next(
            (u, v)
            for u in range(graph.n)
            for v in range(u + 1, graph.n)
            if not graph.has_edge(u, v)
        )
        outcome = engine.insert_edge(*nonedge)
        assert outcome.full_resolve and engine.delta == 5
        validate_coloring(engine.graph, engine.colors, max_colors=engine.palette)
        engine.delete_edge(*nonedge)
        validate_coloring(engine.graph, engine.colors, max_colors=engine.palette)


@settings(max_examples=15, deadline=None)
@given(st.data())
def test_random_stream_backends_agree(data):
    """Property: the dynamic and immutable backends stay bit-identical
    (graph CSR, coloring, Δ, palette) across any accepted op stream."""
    n = data.draw(st.integers(min_value=4, max_value=12), label="n")
    all_pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = data.draw(
        st.lists(
            st.sampled_from(all_pairs), unique=True, min_size=1,
            max_size=len(all_pairs),
        ),
        label="edges",
    )
    graph = Graph(n, edges)
    result = solve(graph, algorithm="auto", seed=0)
    imm = IncrementalColoring.from_result(
        graph, result, backend="immutable", validate=True
    )
    dyn = IncrementalColoring.from_result(
        graph, result, backend="dynamic", validate=True
    )
    reference = set(edges)
    ops = data.draw(st.integers(min_value=1, max_value=6), label="ops")
    for _ in range(ops):
        present = sorted(reference)
        absent = sorted(set(all_pairs) - reference)
        do_insert = data.draw(st.booleans(), label="insert?") if absent else False
        if not present:
            do_insert = True
        if do_insert and absent:
            edge = data.draw(st.sampled_from(absent), label="edge")
            imm.insert_edge(*edge)
            dyn.insert_edge(*edge)
            reference.add(edge)
        elif present:
            edge = data.draw(st.sampled_from(present), label="edge")
            imm.delete_edge(*edge)
            dyn.delete_edge(*edge)
            reference.discard(edge)
        assert imm.colors == dyn.colors
        assert imm.graph.csr() == dyn.graph.csr()
        assert imm.delta == dyn.delta and imm.palette == dyn.palette
        assert set(dyn.graph.edges()) == reference


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_random_stream_stays_valid(data):
    """Any accepted op sequence keeps the engine bit-equivalent in
    validity to a fresh solve: after every op the maintained coloring
    validates against the maintained palette, exactly as a fresh solve's
    output validates against its palette — and the maintained edge set
    matches the reference exactly."""
    n = data.draw(st.integers(min_value=4, max_value=14), label="n")
    all_pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = data.draw(
        st.lists(
            st.sampled_from(all_pairs), unique=True, min_size=1,
            max_size=len(all_pairs),
        ),
        label="edges",
    )
    graph = Graph(n, edges)
    result = solve(graph, algorithm="auto", seed=0)
    engine = IncrementalColoring.from_result(graph, result, validate=True)
    reference = set(edges)
    ops = data.draw(st.integers(min_value=1, max_value=8), label="ops")
    for _ in range(ops):
        present = sorted(reference)
        absent = sorted(set(all_pairs) - reference)
        do_insert = data.draw(st.booleans(), label="insert?") if absent else False
        if not present:
            do_insert = True
        if do_insert and absent:
            edge = data.draw(st.sampled_from(absent), label="edge")
            engine.insert_edge(*edge)
            reference.add(edge)
        elif present:
            edge = data.draw(st.sampled_from(present), label="edge")
            engine.delete_edge(*edge)
            reference.discard(edge)
        # engine.validate already re-validated; check the stronger claims:
        assert set(engine.graph.edges()) == reference
        validate_coloring(engine.graph, engine.colors, max_colors=engine.palette)
        fresh = solve(engine.graph, algorithm="auto", seed=0)
        validate_coloring(engine.graph, list(fresh.colors), max_colors=fresh.palette)
