"""Cross-algorithm integration tests: all four Δ-colorers on shared
instances, plus the public API surface."""

import pytest

import repro
from repro import (
    delta_color,
    delta_coloring_deterministic,
    delta_coloring_large_delta,
    delta_coloring_small_delta,
    ps_delta_coloring,
    validate_coloring,
)
from repro.analysis.stats import loglog_slope, mean
from repro.errors import NotNiceGraphError
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    high_girth_regular_graph,
    path_graph,
    random_regular_graph,
    torus_grid,
)


ALGORITHMS = [
    ("small-delta", lambda g, s: delta_coloring_small_delta(g, seed=s)),
    ("deterministic", lambda g, s: delta_coloring_deterministic(g)),
    ("ps-baseline", lambda g, s: ps_delta_coloring(g, seed=s)),
]


class TestAllAlgorithmsAgreeOnValidity:
    @pytest.mark.parametrize("name,algorithm", ALGORITHMS)
    def test_cubic(self, name, algorithm):
        g = random_regular_graph(300, 3, seed=42)
        result = algorithm(g, 42)
        validate_coloring(g, result.colors, max_colors=3)

    @pytest.mark.parametrize("name,algorithm", ALGORITHMS)
    def test_high_girth(self, name, algorithm):
        g = high_girth_regular_graph(500, 3, girth=8, seed=6)
        result = algorithm(g, 6)
        validate_coloring(g, result.colors, max_colors=3)

    @pytest.mark.parametrize(
        "name,algorithm",
        ALGORITHMS + [("large-delta", lambda g, s: delta_coloring_large_delta(g, seed=s))],
    )
    def test_four_regular(self, name, algorithm):
        g = random_regular_graph(300, 4, seed=43)
        result = algorithm(g, 43)
        validate_coloring(g, result.colors, max_colors=4)

    @pytest.mark.parametrize(
        "name,algorithm",
        ALGORITHMS + [("large-delta", lambda g, s: delta_coloring_large_delta(g, seed=s))],
    )
    def test_torus(self, name, algorithm):
        g = torus_grid(9, 10)
        result = algorithm(g, 7)
        validate_coloring(g, result.colors, max_colors=4)


class TestDispatcher:
    def test_small_delta_dispatch(self):
        g = random_regular_graph(200, 3, seed=1)
        result = delta_color(g, seed=1)
        validate_coloring(g, result.colors, max_colors=3)

    def test_large_delta_dispatch(self):
        g = random_regular_graph(200, 5, seed=2)
        result = delta_color(g, seed=2)
        validate_coloring(g, result.colors, max_colors=5)

    @pytest.mark.parametrize(
        "bad", [complete_graph(5), cycle_graph(8), path_graph(5)]
    )
    def test_rejects_non_nice(self, bad):
        with pytest.raises(NotNiceGraphError):
            delta_color(bad)


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_result_contract(self):
        g = random_regular_graph(150, 4, seed=3)
        result = delta_color(g, seed=3)
        assert result.rounds == sum(result.phase_rounds.values())
        assert result.delta == 4
        assert len(result.colors) == g.n


class TestRoundScalingSanity:
    """Coarse shape checks backing the benchmark claims: the new
    algorithms' rounds grow far slower in n than the PS baseline's."""

    def test_new_beats_baseline_on_large_instances(self):
        g = random_regular_graph(3000, 4, seed=11)
        new = delta_coloring_large_delta(g, seed=11).rounds
        old = ps_delta_coloring(g, seed=11).rounds
        assert new < old

    def test_baseline_grows_faster(self):
        sizes = [500, 2000, 8000]
        new_rounds, old_rounds = [], []
        for n in sizes:
            g = random_regular_graph(n, 4, seed=n)
            new_rounds.append(delta_coloring_large_delta(g, seed=n).rounds)
            old_rounds.append(ps_delta_coloring(g, seed=n).rounds)
        assert loglog_slope(sizes, old_rounds) > loglog_slope(sizes, new_rounds) - 0.05

    def test_stats_helpers(self):
        assert mean([1, 2, 3]) == 2.0
        assert loglog_slope([10, 100, 1000], [10, 100, 1000]) == pytest.approx(1.0)
