"""Tests for Linial's O(Δ²) coloring."""

import pytest

from repro.graphs.generators import (
    hypercube,
    random_regular_graph,
    torus_grid,
)
from repro.local.rounds import RoundLedger
from repro.primitives.linial import linial_coloring, reduction_schedule
from repro.primitives.numbers import ilog_star, int_to_digits, is_prime, next_prime


class TestNumberHelpers:
    def test_is_prime_small(self):
        assert [x for x in range(2, 30) if is_prime(x)] == [2, 3, 5, 7, 11, 13, 17, 19, 23, 29]

    def test_is_prime_edge(self):
        assert not is_prime(0) and not is_prime(1) and not is_prime(-7)

    def test_next_prime(self):
        assert next_prime(14) == 17
        assert next_prime(17) == 17
        assert next_prime(1) == 2

    def test_digits_roundtrip(self):
        digits = int_to_digits(123, 7, 4)
        assert sum(d * 7**i for i, d in enumerate(digits)) == 123

    def test_digits_overflow(self):
        with pytest.raises(ValueError):
            int_to_digits(50, 7, 2)

    def test_ilog_star(self):
        assert ilog_star(1) == 0
        assert ilog_star(2) == 1
        assert ilog_star(16) == 3
        assert ilog_star(65536) == 4


class TestLinialColoring:
    @pytest.mark.parametrize("n,d,seed", [(300, 3, 1), (300, 4, 2), (200, 6, 3), (150, 8, 4)])
    def test_proper_and_small_palette(self, n, d, seed):
        g = random_regular_graph(n, d, seed=seed)
        ledger = RoundLedger()
        result = linial_coloring(g, ledger)
        for u, v in g.edges():
            assert result.colors[u] != result.colors[v]
        assert all(0 <= c < result.palette for c in result.colors)
        # palette should be O(Δ²): generous constant for the prime gaps
        assert result.palette <= max((3 * d + 4) ** 2, n and 0 or 0, 25)
        assert ledger.total_rounds == result.iterations

    def test_torus(self):
        g = torus_grid(10, 10)
        result = linial_coloring(g)
        for u, v in g.edges():
            assert result.colors[u] != result.colors[v]

    def test_hypercube(self):
        g = hypercube(5)
        result = linial_coloring(g)
        for u, v in g.edges():
            assert result.colors[u] != result.colors[v]

    def test_iterations_grow_very_slowly(self):
        """The O(log* n) behaviour: iteration counts are tiny and nearly
        flat across three orders of magnitude of n."""
        small = len(reduction_schedule(10**2, 4))
        large = len(reduction_schedule(10**6, 4))
        huge = len(reduction_schedule(10**12, 4))
        assert small <= large <= huge
        assert huge <= small + 3
        assert huge <= 6

    def test_schedule_monotone_palettes(self):
        schedule = reduction_schedule(10**6, 5)
        palettes = [k for k, _d, _q in schedule]
        assert palettes == sorted(palettes, reverse=True)

    def test_zero_iterations_when_already_small(self):
        g = random_regular_graph(20, 5, seed=1)
        result = linial_coloring(g)
        # n=20 is already below the fixed point for Δ=5; identity works
        assert result.iterations == 0
        assert result.colors == list(range(20))
