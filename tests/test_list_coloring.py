"""Tests for the (deg+1)-list coloring engines (Theorems 18/19 substitutes)."""

import random

import pytest

from repro.errors import AlgorithmContractError
from repro.graphs.bfs import distance_layers
from repro.graphs.generators import random_regular_graph, torus_grid
from repro.graphs.validation import UNCOLORED, validate_coloring
from repro.local.rounds import RoundLedger
from repro.primitives.linial import linial_coloring
from repro.primitives.list_coloring import (
    available_colors,
    greedy_color_sequential,
    list_coloring_deterministic,
    list_coloring_hybrid,
    list_coloring_random,
)


def _fresh(n=300, d=5, seed=1):
    g = random_regular_graph(n, d, seed=seed)
    return g, [UNCOLORED] * n


class TestAvailableColors:
    def test_full_when_uncolored_neighbors(self):
        g, colors = _fresh(50, 3, seed=2)
        assert available_colors(g, colors, 0, 4) == [1, 2, 3, 4]

    def test_excludes_neighbor_colors(self):
        g = torus_grid(5, 5)
        colors = [UNCOLORED] * g.n
        colors[g.adj[0][0]] = 2
        assert 2 not in available_colors(g, colors, 0, 4)


class TestRandomEngine:
    @pytest.mark.parametrize("seed", range(5))
    def test_colors_everything_with_delta_plus_one(self, seed):
        g, colors = _fresh(seed=seed)
        stats = list_coloring_random(
            g, colors, set(range(g.n)), 6, RoundLedger(), random.Random(seed), strict=True
        )
        validate_coloring(g, colors, max_colors=6)
        assert stats.leftover_after_trials == 0

    def test_iteration_cap_respected(self):
        g, colors = _fresh(seed=9)
        stats = list_coloring_random(
            g, colors, set(range(g.n)), 6, RoundLedger(), random.Random(1), max_iterations=1
        )
        assert stats.iterations == 1

    def test_strict_detects_bad_instance(self):
        # Delta-regular graph with only Delta colors and no slack anywhere
        g, colors = _fresh(60, 4, seed=3)
        with pytest.raises(AlgorithmContractError, match="deg\\+1"):
            list_coloring_random(
                g, colors, set(range(g.n)), 4, RoundLedger(), random.Random(1), strict=True
            )

    def test_rounds_equal_iterations(self):
        g, colors = _fresh(seed=4)
        ledger = RoundLedger()
        stats = list_coloring_random(
            g, colors, set(range(g.n)), 6, ledger, random.Random(2)
        )
        assert ledger.total_rounds == stats.iterations


class TestHybridEngine:
    @pytest.mark.parametrize("seed", range(5))
    def test_always_finishes(self, seed):
        g, colors = _fresh(seed=seed + 10)
        stats = list_coloring_hybrid(
            g, colors, set(range(g.n)), 6, RoundLedger(), random.Random(seed), strict=True
        )
        validate_coloring(g, colors, max_colors=6)
        assert stats.iterations <= 2 * 3 + 4 + 1  # 2·ceil(log2(Δ+1)) + 4

    def test_tiny_trial_budget_forces_gathering(self):
        g, colors = _fresh(seed=20)
        ledger = RoundLedger()
        stats = list_coloring_hybrid(
            g, colors, set(range(g.n)), 6, ledger, random.Random(3), trial_budget=0
        )
        validate_coloring(g, colors, max_colors=6)
        assert stats.leftover_after_trials == g.n
        assert stats.gather_rounds > 0


class TestDeterministicEngine:
    @pytest.mark.parametrize("seed", range(4))
    def test_colors_everything(self, seed):
        g, colors = _fresh(seed=seed + 30)
        linial = linial_coloring(g)
        ledger = RoundLedger()
        stats = list_coloring_deterministic(
            g, colors, set(range(g.n)), 6, linial.colors, linial.palette, ledger, strict=True
        )
        validate_coloring(g, colors, max_colors=6)
        assert stats.iterations == linial.palette
        assert ledger.total_rounds == linial.palette

    def test_skips_already_colored(self):
        g, colors = _fresh(seed=40)
        linial = linial_coloring(g)
        colors[0] = 1
        list_coloring_deterministic(
            g, colors, set(range(g.n)), 6, linial.colors, linial.palette
        )
        assert colors[0] == 1


class TestLayeredUsage:
    """The engines as the layering technique uses them: color distance
    layers in reverse, each a (deg+1) instance with Δ colors only."""

    @pytest.mark.parametrize("engine_name", ["random", "hybrid", "deterministic"])
    def test_torus_layers_with_delta_colors(self, engine_name):
        g = torus_grid(9, 9)
        colors = [UNCOLORED] * g.n
        layers = distance_layers(g, [0])
        linial = linial_coloring(g)
        ledger = RoundLedger()
        rng = random.Random(5)
        for layer in reversed(layers[1:]):
            targets = set(layer)
            if engine_name == "random":
                list_coloring_random(g, colors, targets, 4, ledger, rng, strict=True)
            elif engine_name == "hybrid":
                list_coloring_hybrid(g, colors, targets, 4, ledger, rng, strict=True)
            else:
                list_coloring_deterministic(
                    g, colors, targets, 4, linial.colors, linial.palette, ledger, strict=True
                )
        # everything except the base node is colored with Δ=4 colors
        validate_coloring(g, colors, max_colors=4, allow_partial=True)
        assert sum(1 for c in colors if c == UNCOLORED) == 1


class TestGreedySequential:
    def test_any_order_works_for_deg_plus_one(self):
        g, colors = _fresh(200, 4, seed=50)
        greedy_color_sequential(g, colors, list(range(g.n)), 5)
        validate_coloring(g, colors, max_colors=5)

    def test_respects_precolored(self):
        g = torus_grid(5, 5)
        colors = [UNCOLORED] * g.n
        colors[0] = 3
        greedy_color_sequential(g, colors, [v for v in range(g.n) if v != 0], 5)
        assert colors[0] == 3
        validate_coloring(g, colors, max_colors=5)
