"""Tests for the LOCAL substrate: round ledger and synchronous engine."""

import pytest

from repro.graphs.generators import cycle_graph, random_regular_graph
from repro.local.network import NodeContext, SyncNetwork
from repro.local.rounds import RoundLedger
from repro.primitives.mis import LubyProgram


class TestRoundLedger:
    def test_simple_charge(self):
        ledger = RoundLedger()
        ledger.charge(5)
        assert ledger.total_rounds == 5

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            RoundLedger().charge(-1)

    def test_phases_attribute_rounds(self):
        ledger = RoundLedger()
        with ledger.phase("a"):
            ledger.charge(2)
            with ledger.phase("b"):
                ledger.charge(3)
        assert ledger.snapshot() == {"a": 2, "a/b": 3}
        assert ledger.total_rounds == 5

    def test_charge_max(self):
        ledger = RoundLedger()
        ledger.charge_max([3, 9, 1])
        assert ledger.total_rounds == 9

    def test_charge_max_empty(self):
        ledger = RoundLedger()
        ledger.charge_max([])
        assert ledger.total_rounds == 0

    def test_breakdown_table_contains_total(self):
        ledger = RoundLedger()
        with ledger.phase("x"):
            ledger.charge(4)
        assert "TOTAL" in ledger.breakdown.as_table()
        assert "x" in ledger.breakdown.as_table()


class _CountNeighborsProgram:
    """Tiny program: each node halts after learning its degree via one
    message exchange (sanity check of the engine plumbing)."""

    def start(self, ctx: NodeContext) -> None:
        ctx.state["heard"] = 0

    def message(self, ctx: NodeContext, round_index: int):
        return "ping"

    def receive(self, ctx: NodeContext, round_index: int, inbox) -> bool:
        ctx.state["heard"] = len(inbox)
        return True


class TestSyncNetwork:
    def test_one_round_degree_count(self):
        g = cycle_graph(5)
        net = SyncNetwork(g)
        contexts = net.run(_CountNeighborsProgram())
        assert all(ctx.state["heard"] == 2 for ctx in contexts.values())
        assert net.ledger.total_rounds == 1

    def test_active_subset_masks_messages(self):
        g = cycle_graph(6)
        net = SyncNetwork(g, active={0, 1, 2})
        contexts = net.run(_CountNeighborsProgram())
        assert contexts[1].state["heard"] == 2
        assert contexts[0].state["heard"] == 1  # neighbour 5 is inactive
        assert 5 not in contexts

    def test_max_rounds_guard(self):
        class NeverHalts:
            def start(self, ctx):
                pass

            def message(self, ctx, round_index):
                return "x"

            def receive(self, ctx, round_index, inbox):
                return False

        with pytest.raises(RuntimeError, match="exceeded"):
            SyncNetwork(cycle_graph(4)).run(NeverHalts(), max_rounds=10)

    def test_states_extraction(self):
        g = cycle_graph(4)
        net = SyncNetwork(g)
        net.run(_CountNeighborsProgram())
        assert net.states("heard") == {0: 2, 1: 2, 2: 2, 3: 2}


class TestLubyProgramOnEngine:
    @pytest.mark.parametrize("seed", range(5))
    def test_produces_valid_mis(self, seed):
        g = random_regular_graph(120, 4, seed=seed)
        net = SyncNetwork(g, RoundLedger())
        contexts = net.run(LubyProgram(seed=seed))
        in_set = LubyProgram.extract(contexts)
        for u, v in g.edges():
            assert not (u in in_set and v in in_set)
        for v in range(g.n):
            assert v in in_set or any(u in in_set for u in g.adj[v])

    def test_rounds_are_two_per_iteration(self):
        g = random_regular_graph(100, 3, seed=2)
        net = SyncNetwork(g, RoundLedger())
        net.run(LubyProgram(seed=2))
        assert net.ledger.total_rounds % 2 == 0
        assert net.ledger.total_rounds >= 2
