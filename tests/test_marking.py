"""Tests for the marking process (phase 4)."""

import random

import pytest

from repro.core.marking import (
    MARK_COLOR,
    default_selection_probability,
    marking_process,
)
from repro.errors import AlgorithmContractError
from repro.graphs.bfs import bfs_distances
from repro.graphs.generators import high_girth_regular_graph, random_regular_graph
from repro.graphs.validation import UNCOLORED
from repro.local.rounds import RoundLedger


def _run(graph, p=None, backoff=6, seed=0):
    h_nodes = set(range(graph.n))
    colors = [UNCOLORED] * graph.n
    if p is None:
        p = default_selection_probability(graph.max_degree(), backoff)
    outcome = marking_process(
        graph, h_nodes, colors, p, backoff, random.Random(seed), RoundLedger()
    )
    return outcome, colors


class TestInvariants:
    @pytest.mark.parametrize("seed", range(6))
    def test_marks_colored_one_everything_else_uncolored(self, seed):
        g = random_regular_graph(800, 4, seed=seed)
        outcome, colors = _run(g, p=0.01, seed=seed)
        for v in range(g.n):
            if v in outcome.marked:
                assert colors[v] == MARK_COLOR
            else:
                assert colors[v] == UNCOLORED

    @pytest.mark.parametrize("seed", range(6))
    def test_t_nodes_have_two_nonadjacent_marked_neighbors(self, seed):
        g = random_regular_graph(800, 4, seed=seed)
        outcome, colors = _run(g, p=0.01, seed=seed)
        adj_sets = g.adjacency_sets()
        for t, (u1, u2) in outcome.t_nodes.items():
            assert u1 in adj_sets[t] and u2 in adj_sets[t]
            assert u1 not in adj_sets[u2]
            assert colors[u1] == MARK_COLOR and colors[u2] == MARK_COLOR

    @pytest.mark.parametrize("seed", range(6))
    def test_survivors_pairwise_far(self, seed):
        backoff = 6
        g = random_regular_graph(800, 3, seed=seed)
        outcome, _ = _run(g, p=0.02, backoff=backoff, seed=seed)
        survivors = sorted(outcome.t_nodes)
        for v in survivors:
            dist = bfs_distances(g, [v], max_depth=backoff)
            for u in survivors:
                if u != v:
                    assert dist[u] == -1, f"T-nodes {v},{u} within backoff"

    @pytest.mark.parametrize("seed", range(6))
    def test_marks_of_distinct_t_nodes_not_adjacent(self, seed):
        g = random_regular_graph(800, 4, seed=seed)
        outcome, _ = _run(g, p=0.02, seed=seed)
        adj_sets = g.adjacency_sets()
        marks = list(outcome.t_nodes.items())
        for i, (t1, pair1) in enumerate(marks):
            for t2, pair2 in marks[i + 1:]:
                for a in pair1:
                    for b in pair2:
                        assert a != b
                        assert b not in adj_sets[a]

    def test_marking_is_proper_coloring(self):
        g = random_regular_graph(1000, 4, seed=9)
        _outcome, colors = _run(g, p=0.02, seed=9)
        from repro.graphs.validation import validate_coloring

        validate_coloring(g, colors, allow_partial=True)


class TestGuards:
    def test_backoff_below_five_rejected(self):
        g = random_regular_graph(50, 3, seed=1)
        with pytest.raises(AlgorithmContractError, match="backoff"):
            marking_process(g, set(range(g.n)), [UNCOLORED] * g.n, 0.1, 4)

    def test_precolored_h_rejected(self):
        g = random_regular_graph(50, 3, seed=1)
        colors = [UNCOLORED] * g.n
        colors[3] = 2
        with pytest.raises(AlgorithmContractError, match="precondition"):
            marking_process(g, set(range(g.n)), colors, 0.1, 6)

    def test_rounds_charged(self):
        g = random_regular_graph(100, 3, seed=2)
        ledger = RoundLedger()
        marking_process(g, set(range(g.n)), [UNCOLORED] * g.n, 0.05, 6, random.Random(1), ledger)
        assert ledger.total_rounds == 6 + 2


class TestSelectionProbability:
    def test_decreases_with_backoff(self):
        assert default_selection_probability(3, 8) < default_selection_probability(3, 5)

    def test_decreases_with_delta(self):
        assert default_selection_probability(8, 6) < default_selection_probability(3, 6)

    def test_bounded(self):
        for delta in (3, 5, 10, 50):
            p = default_selection_probability(delta, 6)
            assert 0 < p <= 0.25


class TestStatistics:
    def test_counters_consistent(self):
        g = high_girth_regular_graph(600, 3, girth=8, seed=3)
        outcome, _ = _run(g, seed=4)
        assert outcome.initially_selected >= len(outcome.t_nodes)
        assert outcome.backed_off + len(outcome.t_nodes) + outcome.no_pair_available \
            == outcome.initially_selected
        assert len(outcome.marked) == 2 * len(outcome.t_nodes)
