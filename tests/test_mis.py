"""Tests for MIS engines (Luby, Ghaffari, power graph, color classes)."""

import random

import pytest

from repro.graphs.bfs import bfs_distances
from repro.graphs.generators import (
    cycle_graph,
    random_regular_graph,
    torus_grid,
)
from repro.local.rounds import RoundLedger
from repro.primitives.linial import linial_coloring
from repro.primitives.mis import (
    ghaffari_mis,
    greedy_mis_from_coloring,
    luby_mis,
    power_graph_mis,
)


def _assert_mis(graph, in_set, active=None):
    active = set(range(graph.n)) if active is None else active
    for u, v in graph.edges():
        if u in active and v in active:
            assert not (u in in_set and v in in_set), f"edge ({u},{v}) inside MIS"
    for v in active:
        assert v in in_set or any(
            u in in_set for u in graph.adj[v] if u in active
        ), f"node {v} uncovered"


class TestLuby:
    @pytest.mark.parametrize("seed", range(6))
    def test_valid_mis(self, seed):
        g = random_regular_graph(200, 4, seed=seed)
        result = luby_mis(g, RoundLedger(), random.Random(seed))
        assert not result.undecided
        _assert_mis(g, result.in_set)

    def test_rounds_charged(self):
        g = random_regular_graph(100, 3, seed=1)
        ledger = RoundLedger()
        result = luby_mis(g, ledger, random.Random(1))
        assert ledger.total_rounds == 2 * result.iterations

    def test_active_subset(self):
        g = torus_grid(8, 8)
        active = set(range(0, g.n, 2)) | set(range(1, g.n, 4))
        result = luby_mis(g, active=set(active))
        _assert_mis(g, result.in_set, active)

    def test_iteration_cap_leaves_undecided(self):
        g = random_regular_graph(400, 4, seed=3)
        result = luby_mis(g, max_iterations=1, rng=random.Random(0))
        # after a single iteration there are almost surely undecided nodes
        assert result.iterations == 1
        assert result.in_set
        # undecided nodes have no neighbour in the set
        for v in result.undecided:
            assert v not in result.in_set
            assert all(u not in result.in_set for u in g.adj[v])


class TestGhaffari:
    @pytest.mark.parametrize("seed", range(6))
    def test_valid_mis(self, seed):
        g = random_regular_graph(200, 5, seed=seed)
        result = ghaffari_mis(g, RoundLedger(), random.Random(seed))
        assert not result.undecided
        _assert_mis(g, result.in_set)

    def test_empty_active(self):
        g = cycle_graph(5)
        result = ghaffari_mis(g, active=set())
        assert result.in_set == set() and result.iterations == 0


class TestPowerGraphMIS:
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_distance_separation(self, k):
        g = random_regular_graph(300, 3, seed=5)
        result = power_graph_mis(g, k, rng=random.Random(2))
        nodes = sorted(result.in_set)
        for v in nodes:
            dist = bfs_distances(g, [v], max_depth=k)
            for u in nodes:
                if u != v:
                    assert dist[u] == -1, f"{v},{u} within {k}"

    @pytest.mark.parametrize("k", [2, 3])
    def test_domination(self, k):
        g = random_regular_graph(300, 3, seed=6)
        result = power_graph_mis(g, k, rng=random.Random(3))
        dist = bfs_distances(g, result.in_set, max_depth=k)
        assert all(dist[v] != -1 for v in range(g.n))

    def test_rounds_scale_with_k(self):
        g = random_regular_graph(200, 3, seed=7)
        ledger = RoundLedger()
        result = power_graph_mis(g, 3, ledger, random.Random(1))
        assert ledger.total_rounds >= 2 * 3 * result.iterations

    def test_k_equals_one_delegates(self):
        g = random_regular_graph(100, 3, seed=8)
        result = power_graph_mis(g, 1, rng=random.Random(1))
        _assert_mis(g, result.in_set)

    def test_ghaffari_method(self):
        g = random_regular_graph(200, 4, seed=9)
        result = power_graph_mis(g, 2, rng=random.Random(4), method="ghaffari")
        nodes = sorted(result.in_set)
        for v in nodes:
            dist = bfs_distances(g, [v], max_depth=2)
            assert all(dist[u] == -1 for u in nodes if u != v)


class TestGreedyFromColoring:
    @pytest.mark.parametrize("seed", range(4))
    def test_valid_mis(self, seed):
        g = random_regular_graph(150, 4, seed=seed)
        linial = linial_coloring(g)
        ledger = RoundLedger()
        result = greedy_mis_from_coloring(g, linial.colors, linial.palette, ledger)
        _assert_mis(g, result.in_set)
        assert ledger.total_rounds == linial.palette

    def test_respects_active(self):
        g = torus_grid(6, 6)
        linial = linial_coloring(g)
        active = set(range(0, g.n, 3))
        result = greedy_mis_from_coloring(g, linial.colors, linial.palette, active=active)
        _assert_mis(g, result.in_set, active)
