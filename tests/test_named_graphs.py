"""Tests on named classic graphs — the standard coloring sanity vectors."""

import pytest

from repro import (
    delta_color,
    delta_coloring_deterministic,
    ps_delta_coloring,
    slocal_delta_coloring,
    validate_coloring,
)
from repro.graphs.named import (
    circulant_graph,
    complete_bipartite,
    kneser_graph,
    petersen_graph,
)
from repro.graphs.properties import girth_up_to, is_nice


class TestPetersen:
    def test_structure(self):
        g = petersen_graph()
        assert g.n == 10 and g.num_edges == 15
        assert all(g.degree(v) == 3 for v in range(10))
        assert girth_up_to(g, 6) == 5
        assert is_nice(g)

    def test_delta_coloring(self):
        g = petersen_graph()
        result = delta_color(g, seed=1)
        validate_coloring(g, result.colors, max_colors=3)

    def test_deterministic(self):
        g = petersen_graph()
        result = delta_coloring_deterministic(g)
        validate_coloring(g, result.colors, max_colors=3)

    def test_slocal(self):
        g = petersen_graph()
        colors, _run = slocal_delta_coloring(g)
        validate_coloring(g, colors, max_colors=3)


class TestCompleteBipartite:
    @pytest.mark.parametrize("a,b", [(3, 3), (3, 5), (4, 4), (2, 6)])
    def test_delta_coloring(self, a, b):
        g = complete_bipartite(a, b)
        assert is_nice(g)
        result = delta_color(g, seed=a * 10 + b)
        validate_coloring(g, result.colors, max_colors=max(a, b))

    def test_structure(self):
        g = complete_bipartite(3, 4)
        assert g.n == 7 and g.num_edges == 12
        assert g.max_degree() == 4

    @pytest.mark.parametrize("a,b", [(3, 3), (3, 4)])
    def test_ps_baseline(self, a, b):
        g = complete_bipartite(a, b)
        result = ps_delta_coloring(g, seed=1)
        validate_coloring(g, result.colors, max_colors=max(a, b))


class TestKneser:
    def test_k52_is_petersen(self):
        g = kneser_graph(5, 2)
        assert g.n == 10
        assert all(g.degree(v) == 3 for v in range(10))

    def test_k72_delta_coloring(self):
        g = kneser_graph(7, 2)  # 21 nodes, 10-regular
        assert all(g.degree(v) == 10 for v in range(g.n))
        result = delta_color(g, seed=2)
        validate_coloring(g, result.colors, max_colors=10)

    def test_k62_delta_coloring(self):
        g = kneser_graph(6, 2)  # 15 nodes, 6-regular
        result = delta_color(g, seed=3)
        validate_coloring(g, result.colors, max_colors=6)


class TestCirculant:
    @pytest.mark.parametrize("n,offsets", [(20, [1, 2]), (30, [1, 3, 7]), (16, [2, 5])])
    def test_delta_coloring(self, n, offsets):
        g = circulant_graph(n, offsets)
        if not is_nice(g):
            pytest.skip("degenerate circulant")
        result = delta_color(g, seed=n)
        validate_coloring(g, result.colors, max_colors=g.max_degree())

    def test_offsets_validated(self):
        from repro.errors import GraphError

        with pytest.raises(GraphError):
            circulant_graph(10, [6])
