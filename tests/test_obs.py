"""Unit coverage for :mod:`repro.obs` and the metrics satellites.

Span identity / parentage / sampling, the bounded ring, JSONL export and
``load_spans``, synthesized (``emit``) spans, the instrument registry
with its Prometheus exposition and cross-process snapshot merge, the
waterfall renderer, plus the :mod:`repro.service.metrics` satellites:
the cached sorted latency view and the typed error-kind classifier.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.errors import (
    IncrementalUpdateError,
    ServiceOverloadedError,
    ServiceProtocolError,
    ShardUnavailableError,
    StaleParentError,
)
from repro.obs import (
    NOOP_SPAN,
    MetricsRegistry,
    Tracer,
    group_traces,
    load_spans,
    merge_snapshots,
    render_prometheus,
    render_report,
)
from repro.service.metrics import (
    LatencyWindow,
    ServiceMetrics,
    error_kind,
    percentile,
)


class TestSpans:
    def test_ids_parentage_and_attrs(self):
        tracer = Tracer(seed=7)
        root = tracer.start_span("root", attrs={"op": "solve"})
        child = tracer.start_span("child", parent=root)
        assert len(root.trace_id) == 32 and len(root.span_id) == 16
        assert root.parent_id is None
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        # set_attr chains; wire_context is exactly the forwarded field
        child.set_attr("shard", 1).end()
        root.end()
        assert root.wire_context() == {
            "trace_id": root.trace_id, "span_id": root.span_id,
        }
        records = tracer.spans()
        assert [r["name"] for r in records] == ["child", "root"]
        assert records[0]["attrs"] == {"shard": 1}
        assert records[1]["attrs"] == {"op": "solve"}

    def test_context_manager_records_error_attr(self):
        tracer = Tracer(seed=7)
        with pytest.raises(ValueError):
            with tracer.start_span("failing"):
                raise ValueError("boom")
        (record,) = tracer.spans()
        assert record["attrs"]["error"] == "ValueError"

    def test_end_is_idempotent(self):
        tracer = Tracer(seed=7)
        span = tracer.start_span("once")
        span.end()
        span.end()
        assert tracer.stats()["finished"] == 1

    def test_ring_bound_drops_oldest(self):
        tracer = Tracer(seed=7, max_spans=4)
        for i in range(10):
            tracer.start_span(f"s{i}").end()
        records = tracer.spans()
        assert [r["name"] for r in records] == ["s6", "s7", "s8", "s9"]
        stats = tracer.stats()
        assert stats["finished"] == 10
        assert stats["dropped"] == 6
        assert stats["buffered"] == 4

    def test_emit_places_children_by_offset(self):
        tracer = Tracer(seed=7)
        root = tracer.start_span("root")
        first = tracer.emit("phase-a", root, 0.5, attrs={"rounds": 3})
        second = tracer.emit("phase-b", root, 0.25, offset_s=0.5)
        assert first.start_s == pytest.approx(root.start_s)
        assert second.start_s == pytest.approx(root.start_s + 0.5)
        assert first.duration_s == pytest.approx(0.5)
        # an emitted span is already finished
        assert {r["name"] for r in tracer.spans()} == {"phase-a", "phase-b"}
        # emit against a NOOP parent allocates nothing
        assert tracer.emit("ghost", NOOP_SPAN, 1.0) is NOOP_SPAN


class TestSampling:
    def test_disabled_tracer_hands_out_the_noop_singleton(self):
        tracer = Tracer(enabled=False)
        span = tracer.start_span("anything")
        assert span is NOOP_SPAN
        assert not span
        span.set_attr("k", "v").end()
        assert tracer.stats()["finished"] == 0

    def test_sample_zero_roots_are_noop_but_remote_parent_forces_on(self):
        tracer = Tracer(sample=0.0, seed=7)
        assert tracer.start_span("root") is NOOP_SPAN
        # the upstream tier sampled this request: honour its decision
        remote = {"trace_id": "ab" * 16, "span_id": "cd" * 8}
        span = tracer.start_span("continued", remote_parent=remote)
        assert span.trace_id == remote["trace_id"]
        assert span.parent_id == remote["span_id"]

    def test_noop_parent_propagates_the_off_decision(self):
        tracer = Tracer(sample=1.0, seed=7)
        assert tracer.start_span("child", parent=NOOP_SPAN) is NOOP_SPAN

    def test_malformed_remote_context_is_ignored(self):
        tracer = Tracer(seed=7)
        span = tracer.start_span("root", remote_parent={"trace_id": 123})
        assert span.parent_id is None  # fell back to a fresh root


class TestExport:
    def test_jsonl_export_and_load_spans(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        tracer = Tracer(seed=7, export_path=str(path))
        with tracer.start_span("outer") as outer:
            tracer.start_span("inner", parent=outer).end()
        records = load_spans([str(path)])
        assert [r["name"] for r in records] == ["inner", "outer"]
        assert records[0]["trace_id"] == records[1]["trace_id"]

    def test_load_spans_reads_directories_and_skips_torn_lines(self, tmp_path):
        good = tmp_path / "a.jsonl"
        tracer = Tracer(seed=7, export_path=str(good))
        tracer.start_span("kept").end()
        with open(good, "a", encoding="utf-8") as handle:
            handle.write('{"torn": ')  # crashed process mid-line
        (tmp_path / "ignored.txt").write_text("not spans\n")
        records = load_spans([str(tmp_path)])
        assert [r["name"] for r in records] == ["kept"]

    def test_slow_exemplars_keep_slow_roots(self):
        tracer = Tracer(seed=7, slow_threshold_s=0.0)
        tracer.start_span("root").end()
        child_parent = tracer.start_span("root2")
        tracer.start_span("child", parent=child_parent).end()
        child_parent.end()
        # only roots land in the exemplar ring
        assert [r["name"] for r in tracer.slow_exemplars] == ["root", "root2"]


class TestMeters:
    def test_counter_labels_and_totals(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total", "hits", labelnames=("op",))
        counter.inc(op="solve")
        counter.inc(2, op="update")
        assert counter.value(op="solve") == 1
        assert counter.total() == 3
        with pytest.raises(ValueError):
            counter.inc(-1, op="solve")
        with pytest.raises(ValueError):
            counter.inc(op="solve", extra="nope")

    def test_registry_get_or_create_and_conflicts(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", labelnames=("k",))
        assert registry.counter("c_total", labelnames=("k",)) is first
        with pytest.raises(ValueError):
            registry.gauge("c_total")
        with pytest.raises(ValueError):
            registry.counter("c_total", labelnames=("other",))

    def test_callback_gauge_reads_at_snapshot_time(self):
        registry = MetricsRegistry()
        box = {"value": 1.0}
        registry.gauge("boxed", callback=lambda: box["value"])
        assert registry.as_dict()["boxed"]["values"][0]["value"] == 1.0
        box["value"] = 5.0
        assert registry.as_dict()["boxed"]["values"][0]["value"] == 5.0

    def test_histogram_buckets_are_cumulative_in_exposition(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 2.0):
            hist.observe(value)
        text = render_prometheus(registry.as_dict())
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1"} 3' in text
        assert 'lat_seconds_bucket{le="+Inf"} 4' in text
        assert "lat_seconds_count 4" in text
        assert "lat_seconds_sum 3.05" in text

    def test_prometheus_format_help_type_and_label_escaping(self):
        registry = MetricsRegistry()
        counter = registry.counter(
            "odd_total", "counts\nodd things", labelnames=("name",)
        )
        counter.inc(name='quo"te\\slash')
        text = render_prometheus(registry.as_dict())
        assert "# HELP odd_total counts odd things" in text
        assert "# TYPE odd_total counter" in text
        assert r'odd_total{name="quo\"te\\slash"} 1' in text
        assert text.endswith("\n")

    def test_merge_snapshots_sums_per_label_set(self):
        def make(amount: int) -> dict:
            registry = MetricsRegistry()
            registry.counter("req_total", labelnames=("op",)).inc(
                amount, op="solve"
            )
            registry.histogram("lat", buckets=(1.0,)).observe(0.5)
            registry.gauge("depth").set(amount)
            return registry.as_dict()

        merged = merge_snapshots([make(1), make(2)])
        assert merged["req_total"]["values"][0]["value"] == 3
        assert merged["lat"]["values"][0]["count"] == 2
        assert merged["depth"]["values"][0]["value"] == 3
        # disjoint metrics union in
        extra = MetricsRegistry()
        extra.counter("only_here_total").inc()
        merged = merge_snapshots([make(1), extra.as_dict()])
        assert merged["only_here_total"]["values"][0]["value"] == 1
        # a merged snapshot renders through the same exposition path
        assert "# TYPE req_total counter" in render_prometheus(merged)


class TestRender:
    @staticmethod
    def _trace(trace_id: str, base: float, total: float) -> list[dict]:
        root_id = f"{trace_id[:15]}0"
        return [
            {
                "trace_id": trace_id, "span_id": root_id, "parent_id": None,
                "name": "router.request", "start_s": base,
                "duration_s": total,
            },
            {
                "trace_id": trace_id, "span_id": f"{trace_id[:15]}1",
                "parent_id": root_id, "name": "server.request",
                "start_s": base + total / 4, "duration_s": total / 2,
            },
        ]

    def test_report_ranks_slowest_first_and_filters(self):
        records = self._trace("a" * 32, 1.0, 0.010) + self._trace(
            "b" * 32, 2.0, 0.200
        )
        views = group_traces(records)
        assert [v.trace_id[0] for v in views] == ["b", "a"]
        assert views[0].duration_s == pytest.approx(0.200)

        report = render_report(records, top=5)
        assert "4 spans, 2 trace(s)" in report
        assert report.index("b" * 16) < report.index("a" * 16)

        only_a = render_report(records, trace_id="aaaa")
        assert "a" * 32 in only_a and "b" * 16 not in only_a
        slow_only = render_report(records, min_ms=100.0)
        assert "a" * 16 not in slow_only
        assert "no trace matching" in render_report(records, trace_id="zz")

    def test_orphan_spans_anchor_at_depth_zero(self):
        records = [
            {
                "trace_id": "c" * 32, "span_id": "1" * 16,
                "parent_id": "f" * 16,  # parent tier exported no file
                "name": "server.request", "start_s": 0.0, "duration_s": 0.1,
            }
        ]
        (view,) = group_traces(records)
        assert view.depth["1" * 16] == 0
        assert "server.request" in render_report(records)


class TestLatencyWindow:
    def test_nearest_rank_percentiles(self):
        samples = [0.01, 0.02, 0.03, 0.04, 0.05]
        assert percentile(samples, 50) == 0.03
        assert percentile(samples, 95) == 0.05
        assert percentile(samples, 0) == 0.01
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_sorted_view_is_cached_between_snapshots(self):
        window = LatencyWindow(window=8)
        for value in (0.3, 0.1, 0.2):
            window.record(value)
        assert window._sorted is None  # dirty after a record
        first = window.snapshot()
        assert first["p50_ms"] == 200.0
        # a snapshot with no intervening records reuses the sorted view
        assert window._sorted_view() is window._sorted_view()
        assert window.snapshot() == first
        window.record(0.4)
        assert window._sorted is None
        assert window.snapshot()["max_ms"] == 400.0

    def test_window_bounds_but_count_is_all_time(self):
        window = LatencyWindow(window=4)
        for i in range(10):
            window.record(float(i))
        snap = window.snapshot()
        assert snap["count"] == 10
        assert snap["window"] == 4
        assert snap["p50_ms"] == 7000.0  # only the newest 4 remain


class TestErrorKinds:
    def test_classifier_covers_the_taxonomy(self):
        cases = [
            (ShardUnavailableError("x"), "shard_unavailable"),
            (ServiceOverloadedError("x"), "overloaded"),
            (StaleParentError("x"), "stale_parent"),
            (IncrementalUpdateError("x"), "update"),
            (ServiceProtocolError("x"), "protocol"),
            (asyncio.CancelledError(), "cancelled"),
            (ValueError("anything else"), "engine"),
        ]
        for exc, kind in cases:
            assert error_kind(exc) == kind

    def test_service_metrics_split_sheds_from_failures(self):
        metrics = ServiceMetrics()
        metrics.record_rejected("overloaded")
        metrics.record_rejected("shard_unavailable")
        metrics.record_failed("engine")
        metrics.record_failed("stale_parent")
        metrics.record_error("protocol")
        assert metrics.rejected == 2
        assert metrics.failed == 3
        snap = metrics.snapshot()
        assert snap["errors"] == {
            "engine": 1, "overloaded": 1, "protocol": 1,
            "shard_unavailable": 1, "stale_parent": 1,
        }

    def test_snapshot_keeps_the_legacy_shape(self):
        metrics = ServiceMetrics()
        metrics.record_request(0.01, cached=False)
        metrics.record_request(0.001, cached=True)
        metrics.record_request(0.002, cached=False, coalesced=True)
        metrics.record_batch(2)
        metrics.set_queue_depth(3)
        metrics.set_queue_depth(1)
        snap = metrics.snapshot()
        assert snap["completed"] == 3
        assert snap["cached"] == 1
        assert snap["coalesced"] == 1
        assert snap["cache_hit_rate"] == pytest.approx(1 / 3, abs=1e-4)
        assert snap["latency"]["count"] == 3
        assert snap["latency_solved"]["count"] == 1
        assert snap["mean_batch_size"] == 2.0
        assert snap["queue_depth"] == 1
        assert snap["queue_depth_peak"] == 3
        # the same counts flow through the registry exposition
        text = render_prometheus(metrics.registry.as_dict())
        assert 'repro_requests_total{outcome="cached"} 1' in text
        assert 'repro_request_latency_seconds_count{outcome="solved"} 1' in text
        assert json.dumps(snap)  # snapshot stays JSON-serialisable
