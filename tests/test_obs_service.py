"""End-to-end observability: traces across the wire, metrics verb.

Real TCP throughout (the same in-process topology as
``tests/test_sharding.py``): a client request entering the router must
come out the far side as one connected span tree — router.request →
router.forward → server.request → gateway.* → solver.* — even though
the tiers hold separate :class:`Tracer` instances, and the ``metrics``
verb must serve one merged fleet snapshot through the router.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.analysis.harness import carve_matching
from repro.errors import ServiceProtocolError
from repro.graphs.generators import random_regular_graph
from repro.obs import Tracer
from repro.service import AsyncColoringClient, ColoringServer, ShardRouter


def _span_index(tracer: Tracer) -> dict[str, list[dict]]:
    index: dict[str, list[dict]] = {}
    for record in tracer.spans():
        index.setdefault(record["name"], []).append(record)
    return index


def updatable_instance(n=64, delta=4, slack=2, seed=0):
    full = random_regular_graph(n, delta, seed=seed)
    matching = carve_matching(full, slack)
    return full.apply_updates(removed=matching), matching


class _TracedCluster:
    """Two traced in-process shards behind a traced router."""

    def __init__(self, router_sample: float = 1.0, shard_sample: float = 0.0):
        # Shards at sample=0 trace exactly the requests the router
        # sampled — the parent-based decision crossing the wire is the
        # point of the test.
        self.shard_tracers = [
            Tracer(sample=shard_sample, seed=10 + i) for i in range(2)
        ]
        self.router_tracer = Tracer(sample=router_sample, seed=99)
        self.servers = [
            ColoringServer(port=0, workers=1, tracer=tracer)
            for tracer in self.shard_tracers
        ]
        self.router: ShardRouter | None = None

    async def __aenter__(self) -> "_TracedCluster":
        addresses = [await server.start() for server in self.servers]
        self.router = ShardRouter(addresses, port=0, tracer=self.router_tracer)
        await self.router.start()
        return self

    async def __aexit__(self, *exc) -> None:
        if self.router is not None:
            await self.router.close()
        for server in self.servers:
            await server.close()

    @property
    def port(self) -> int:
        assert self.router is not None
        return self.router.port


class TestSingleServerTracing:
    def test_solve_produces_a_connected_span_tree(self):
        graph = random_regular_graph(32, 3, seed=0)
        tracer = Tracer(seed=3)
        server = ColoringServer(port=0, workers=1, tracer=tracer)

        async def drive():
            await server.start()
            try:
                async with AsyncColoringClient(port=server.port) as client:
                    first = await client.solve(graph, algorithm="auto", seed=1)
                    replay = await client.solve(graph, algorithm="auto", seed=1)
            finally:
                await server.close()
            return first, replay

        first, replay = asyncio.run(drive())
        assert not first.cached and replay.cached

        spans = _span_index(tracer)
        roots = spans["server.request"]
        assert len(roots) == 2
        assert [r["attrs"]["cached"] for r in roots] == [False, True]
        assert all(r["parent_id"] is None for r in roots)
        # both requests probed the cache; only the miss was admitted,
        # batched and solved
        assert len(spans["gateway.cache_probe"]) == 2
        assert [p["attrs"]["hit"] for p in spans["gateway.cache_probe"]] == [
            False, True,
        ]
        assert len(spans["gateway.admission"]) == 1
        (batch,) = spans["gateway.batch_execute"]
        assert batch["attrs"]["batch_size"] == 1
        solver_phases = [
            name for name in spans if name.startswith("solver.")
        ]
        assert solver_phases  # at least one phase span was synthesized
        # every span belongs to one of the two request trees and every
        # parent pointer resolves within its trace
        by_id = {r["span_id"]: r for rs in spans.values() for r in rs}
        for record in by_id.values():
            assert record["trace_id"] in {r["trace_id"] for r in roots}
            if record["parent_id"] is not None:
                parent = by_id[record["parent_id"]]
                assert parent["trace_id"] == record["trace_id"]
                # children start no earlier than their parent (emitted
                # phase spans are offset from the parent's start)
                assert record["start_s"] >= parent["start_s"] - 1e-6

    def test_update_emits_repair_rung_spans(self):
        parent_graph, matching = updatable_instance()
        tracer = Tracer(seed=4)
        server = ColoringServer(port=0, workers=1, tracer=tracer)

        async def drive():
            await server.start()
            try:
                async with AsyncColoringClient(port=server.port) as client:
                    solved = await client.solve(
                        parent_graph, algorithm="auto", seed=1
                    )
                    return await client.update(
                        solved.fingerprint, edges_added=[matching[0]]
                    )
            finally:
                await server.close()

        reply = asyncio.run(drive())
        spans = _span_index(tracer)
        (apply_span,) = spans["gateway.update_apply"]
        assert "full_resolve" in apply_span["attrs"]
        # one repair.<rung> child per rung the engine charged wall time to
        charged = set((reply.update or {}).get("rung_wall_s", {}))
        emitted = {
            name.removeprefix("repair.")
            for name in spans
            if name.startswith("repair.")
        }
        assert emitted == charged
        for name in emitted:
            (rung,) = spans[f"repair.{name}"]
            assert rung["parent_id"] == apply_span["span_id"]

    def test_sampling_off_records_nothing(self):
        graph = random_regular_graph(32, 3, seed=0)
        tracer = Tracer(sample=0.0, seed=5)
        server = ColoringServer(port=0, workers=1, tracer=tracer)

        async def drive():
            await server.start()
            try:
                async with AsyncColoringClient(port=server.port) as client:
                    return await client.solve(graph, algorithm="auto", seed=1)
            finally:
                await server.close()

        reply = asyncio.run(drive())
        assert reply.result.palette >= 1
        assert tracer.stats()["finished"] == 0


class TestCrossTierTracing:
    def test_trace_context_propagates_router_to_shard(self):
        graph = random_regular_graph(32, 3, seed=0)

        async def drive():
            async with _TracedCluster() as cluster:
                async with AsyncColoringClient(port=cluster.port) as client:
                    await client.solve(graph, algorithm="auto", seed=1)
                return cluster

        cluster = asyncio.run(drive())
        router_spans = _span_index(cluster.router_tracer)
        (root,) = router_spans["router.request"]
        (forward,) = router_spans["router.forward"]
        assert root["parent_id"] is None
        assert forward["parent_id"] == root["span_id"]
        assert forward["trace_id"] == root["trace_id"]

        # exactly one shard continued the trace (local sample=0 — the
        # remote parent forced it on), linked under the forward span
        shard_spans = [
            _span_index(t) for t in cluster.shard_tracers if t.spans()
        ]
        assert len(shard_spans) == 1
        (server_root,) = shard_spans[0]["server.request"]
        assert server_root["trace_id"] == root["trace_id"]
        assert server_root["parent_id"] == forward["span_id"]
        # gateway work hangs off the continued span in the same trace
        assert all(
            record["trace_id"] == root["trace_id"]
            for records in shard_spans[0].values()
            for record in records
        )
        assert "gateway.batch_execute" in shard_spans[0]

    def test_router_sample_zero_traces_nothing_anywhere(self):
        graph = random_regular_graph(32, 3, seed=0)

        async def drive():
            async with _TracedCluster(router_sample=0.0) as cluster:
                async with AsyncColoringClient(port=cluster.port) as client:
                    await client.solve(graph, algorithm="auto", seed=1)
                return cluster

        cluster = asyncio.run(drive())
        assert cluster.router_tracer.stats()["finished"] == 0
        assert all(t.stats()["finished"] == 0 for t in cluster.shard_tracers)


class TestMetricsVerb:
    def test_single_server_metrics_json_and_prometheus(self):
        graph = random_regular_graph(32, 3, seed=0)
        server = ColoringServer(port=0, workers=1)

        async def drive():
            await server.start()
            try:
                async with AsyncColoringClient(port=server.port) as client:
                    await client.solve(graph, algorithm="auto", seed=1)
                    await client.solve(graph, algorithm="auto", seed=1)
                    snapshot = await client.metrics()
                    text = await client.metrics(format="prometheus")
                    with pytest.raises(ServiceProtocolError):
                        await client.metrics(format="xml")
            finally:
                await server.close()
            return snapshot, text

        snapshot, text = asyncio.run(drive())
        requests = {
            tuple(series["labels"]): series["value"]
            for series in snapshot["repro_requests_total"]["values"]
        }
        assert requests[("solved",)] == 1
        assert requests[("cached",)] == 1
        assert "process_resident_memory_bytes" in snapshot
        assert "# TYPE repro_requests_total counter" in text
        assert 'repro_requests_total{outcome="cached"} 1' in text
        assert "# TYPE repro_request_latency_seconds histogram" in text

    def test_router_metrics_merge_the_fleet(self):
        graphs = [random_regular_graph(32, 3, seed=s) for s in range(4)]

        async def drive():
            async with _TracedCluster() as cluster:
                async with AsyncColoringClient(port=cluster.port) as client:
                    for graph in graphs:
                        await client.solve(graph, algorithm="auto", seed=1)
                    merged = await client.metrics()
                    text = await client.metrics(format="prometheus")
                shard_totals = [
                    server.gateway.metrics.completed
                    for server in cluster.servers
                ]
                return merged, text, shard_totals

        merged, text, shard_totals = asyncio.run(drive())
        # the merged fleet view sums what the individual shards served
        fleet_completed = sum(
            series["value"]
            for series in merged["repro_requests_total"]["values"]
        )
        assert fleet_completed == sum(shard_totals) == len(graphs)
        # the router's own tier shows up alongside the shards'
        routed = {
            tuple(series["labels"]): series["value"]
            for series in merged["repro_router_requests_total"]["values"]
        }
        assert routed[("solve",)] == len(graphs)
        assert routed[("metrics",)] >= 1
        up = {
            tuple(series["labels"]): series["value"]
            for series in merged["repro_router_shard_up"]["values"]
        }
        assert up == {("0",): 1, ("1",): 1}
        assert "# TYPE repro_router_requests_total counter" in text
