"""Tests pinning the message-passing programs against the fast engines."""

import pytest

from repro.graphs.bfs import bfs_distances
from repro.graphs.generators import random_regular_graph, torus_grid
from repro.graphs.validation import validate_coloring
from repro.local.network import SyncNetwork
from repro.local.rounds import RoundLedger
from repro.primitives.programs import LayerDiscoveryProgram, TrialColoringProgram


class TestTrialColoringProgram:
    @pytest.mark.parametrize("seed", range(4))
    def test_produces_valid_coloring(self, seed):
        g = random_regular_graph(200, 4, seed=seed)
        net = SyncNetwork(g, RoundLedger())
        contexts = net.run(TrialColoringProgram(max_colors=5, seed=seed))
        colors_map = TrialColoringProgram.extract(contexts)
        colors = [colors_map[v] for v in range(g.n)]
        validate_coloring(g, colors, max_colors=5)

    def test_rounds_are_even(self):
        g = random_regular_graph(100, 3, seed=1)
        net = SyncNetwork(g, RoundLedger())
        net.run(TrialColoringProgram(max_colors=4, seed=1))
        assert net.ledger.total_rounds % 2 == 0

    def test_converges_in_logarithmic_iterations(self):
        g = random_regular_graph(400, 5, seed=2)
        net = SyncNetwork(g, RoundLedger())
        net.run(TrialColoringProgram(max_colors=6, seed=2))
        # deg+1 trials converge in O(log n) iterations w.h.p.
        assert net.ledger.total_rounds <= 2 * 40

    def test_active_subset(self):
        g = torus_grid(8, 8)
        active = set(range(0, g.n, 2))
        net = SyncNetwork(g, RoundLedger(), active=active)
        contexts = net.run(TrialColoringProgram(max_colors=5, seed=3))
        colors_map = TrialColoringProgram.extract(contexts)
        assert set(colors_map) == active
        for v in active:
            for u in g.adj[v]:
                if u in active:
                    assert colors_map[v] != colors_map[u]


class TestLayerDiscoveryProgram:
    @pytest.mark.parametrize("base", [{0}, {0, 50}, {13, 14, 15}])
    def test_matches_bfs_distances(self, base):
        g = torus_grid(9, 9)
        net = SyncNetwork(g, RoundLedger())
        contexts = net.run(LayerDiscoveryProgram(base=base))
        measured = LayerDiscoveryProgram.extract(contexts)
        expected = bfs_distances(g, base)
        for v in range(g.n):
            assert measured[v] == expected[v]

    def test_rounds_close_to_eccentricity(self):
        g = torus_grid(9, 9)
        net = SyncNetwork(g, RoundLedger())
        net.run(LayerDiscoveryProgram(base={0}))
        depth = max(bfs_distances(g, [0]))
        # flood completes within depth + 2 engine rounds
        assert net.ledger.total_rounds <= depth + 2

    def test_random_regular(self):
        g = random_regular_graph(300, 3, seed=4)
        net = SyncNetwork(g, RoundLedger())
        contexts = net.run(LayerDiscoveryProgram(base={0, 1, 2}))
        measured = LayerDiscoveryProgram.extract(contexts)
        expected = bfs_distances(g, {0, 1, 2})
        assert all(measured[v] == expected[v] for v in range(g.n))
