"""Structure-theory predicates: cliques, odd cycles, Gallai trees, DCCs.

Includes the brute-force cross-validation of Theorem 8 on small graphs:
a graph is degree-choosable iff it is not a Gallai tree.
"""

import itertools
import random

import networkx as nx
import pytest

from repro.errors import NotNiceGraphError
from repro.graphs.generators import (
    complete_graph,
    complete_graph_minus_edge,
    cycle_graph,
    hypercube,
    path_graph,
    random_gallai_tree,
    random_regular_graph,
    random_tree,
    torus_grid,
)
from repro.graphs.graph import Graph
from repro.graphs.properties import (
    assert_nice,
    girth_up_to,
    is_clique_nodes,
    is_complete,
    is_cycle_graph,
    is_degree_choosable_component,
    is_gallai_tree,
    is_nice,
    is_odd_cycle_nodes,
    is_path_graph,
)


class TestCliqueAndCycle:
    def test_clique_nodes(self):
        g = complete_graph(5)
        assert is_clique_nodes(g, range(5))
        assert is_clique_nodes(g, [0, 2, 4])
        assert is_clique_nodes(g, [0])
        assert is_clique_nodes(g, [0, 1])

    def test_non_clique(self):
        g = cycle_graph(5)
        assert not is_clique_nodes(g, range(5))

    def test_odd_cycle_nodes(self):
        g = cycle_graph(7)
        assert is_odd_cycle_nodes(g, range(7))

    def test_even_cycle_is_not_odd(self):
        g = cycle_graph(8)
        assert not is_odd_cycle_nodes(g, range(8))

    def test_triangle_is_both(self):
        g = complete_graph(3)
        assert is_clique_nodes(g, range(3))
        assert is_odd_cycle_nodes(g, range(3))

    def test_disjoint_triangles_not_one_cycle(self):
        g = Graph(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])
        assert not is_odd_cycle_nodes(g, range(6))

    def test_chorded_cycle_not_odd_cycle(self):
        g = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)])
        assert not is_odd_cycle_nodes(g, range(5))


class TestWholeGraphShapes:
    def test_is_complete(self):
        assert is_complete(complete_graph(4))
        assert not is_complete(cycle_graph(4))

    def test_is_cycle_graph(self):
        assert is_cycle_graph(cycle_graph(6))
        assert not is_cycle_graph(path_graph(6))
        assert not is_cycle_graph(complete_graph(3)) or True  # K3 == C3
        assert is_cycle_graph(complete_graph(3))

    def test_is_path_graph(self):
        assert is_path_graph(path_graph(4))
        assert is_path_graph(path_graph(1))
        assert not is_path_graph(cycle_graph(4))


class TestNice:
    def test_regular_graph_is_nice(self):
        assert is_nice(random_regular_graph(40, 3, seed=1))

    def test_excluded_families(self):
        assert not is_nice(complete_graph(5))
        assert not is_nice(cycle_graph(8))
        assert not is_nice(path_graph(8))

    def test_disconnected_is_not_nice(self):
        assert not is_nice(Graph(4, [(0, 1), (2, 3)]))

    def test_assert_nice_raises_with_reason(self):
        with pytest.raises(NotNiceGraphError, match="complete"):
            assert_nice(complete_graph(4))
        with pytest.raises(NotNiceGraphError, match="[Cc]ycle"):
            assert_nice(cycle_graph(5))
        with pytest.raises(NotNiceGraphError, match="[Pp]ath"):
            assert_nice(path_graph(5))
        with pytest.raises(NotNiceGraphError, match="connected"):
            assert_nice(Graph(4, [(0, 1), (2, 3)]))

    def test_assert_nice_accepts(self):
        assert_nice(torus_grid(5, 5))


class TestGallaiTrees:
    @pytest.mark.parametrize("seed", range(12))
    def test_generator_produces_gallai_trees(self, seed):
        assert is_gallai_tree(random_gallai_tree(6, seed=seed))

    def test_trees_are_gallai(self):
        assert is_gallai_tree(random_tree(30, seed=3))

    def test_odd_cycle_is_gallai(self):
        assert is_gallai_tree(cycle_graph(9))

    def test_even_cycle_is_not_gallai(self):
        assert not is_gallai_tree(cycle_graph(8))

    def test_torus_is_not_gallai(self):
        assert not is_gallai_tree(torus_grid(4, 4))

    def test_clique_is_gallai(self):
        assert is_gallai_tree(complete_graph(5))


class TestDegreeChoosableComponents:
    def test_k_minus_edge_is_dcc(self):
        g = complete_graph_minus_edge(5)
        assert is_degree_choosable_component(g, range(5))

    def test_clique_is_not_dcc(self):
        assert not is_degree_choosable_component(complete_graph(5), range(5))

    def test_odd_cycle_is_not_dcc(self):
        assert not is_degree_choosable_component(cycle_graph(7), range(7))

    def test_even_cycle_is_dcc(self):
        assert is_degree_choosable_component(cycle_graph(6), range(6))

    def test_small_sets_are_not_dccs(self):
        g = complete_graph(4)
        assert not is_degree_choosable_component(g, [0, 1, 2])

    def test_disconnected_set_is_not_dcc(self):
        g = Graph(8, list(cycle_graph(4).edges()) + [(4 + u, 4 + v) for u, v in cycle_graph(4).edges()])
        assert not is_degree_choosable_component(g, range(8))

    def test_non_two_connected_is_not_dcc(self):
        # two 4-cycles sharing one vertex: connected but has a cut vertex
        edges = [(0, 1), (1, 2), (2, 3), (3, 0), (0, 4), (4, 5), (5, 6), (6, 0)]
        g = Graph(7, edges)
        assert not is_degree_choosable_component(g, range(7))


class TestTheorem8BruteForce:
    """Theorem 8: not degree-choosable <=> Gallai tree.

    For small connected graphs, brute-force degree-choosability (over all
    list assignments from a bounded universe) and compare with the
    Gallai-tree predicate.
    """

    def _is_degree_choosable_bruteforce(self, g: Graph) -> bool:
        universe_size = max(6, g.max_degree() + 2)
        universe = range(1, universe_size + 1)
        for lists in itertools.product(
            *[itertools.combinations(universe, max(1, g.degree(v))) for v in range(g.n)]
        ):
            feasible = any(
                all(combo[u] != combo[v] for u, v in g.edges())
                for combo in itertools.product(*lists)
            )
            if not feasible:
                return False
        return True

    @pytest.mark.parametrize("seed", range(25))
    def test_equivalence_on_small_graphs(self, seed):
        rng = random.Random(seed)
        n = rng.randrange(3, 6)
        g_nx = nx.gnp_random_graph(n, 0.6, seed=seed)
        if not nx.is_connected(g_nx):
            pytest.skip("disconnected sample")
        g = Graph(n, list(g_nx.edges()))
        assert self._is_degree_choosable_bruteforce(g) == (not is_gallai_tree(g))


class TestGirth:
    def test_torus_girth(self):
        assert girth_up_to(torus_grid(5, 5), 10) == 4

    def test_cycle_girth(self):
        assert girth_up_to(cycle_graph(9), 20) == 9

    def test_tree_has_no_cycle(self):
        assert girth_up_to(random_tree(40, seed=2), 15) is None

    def test_cap_respected(self):
        assert girth_up_to(cycle_graph(9), 5) is None

    def test_hypercube_girth(self):
        assert girth_up_to(hypercube(4), 8) == 4
