"""Property-based tests (hypothesis) over the end-to-end pipeline and the
core invariants.

These complement the per-module tests with randomized instance
generation: any nice graph the strategies produce must be Δ-colorable by
every pipeline, any marking run must satisfy the structural invariants,
and the graph substrate must satisfy its own algebra.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import delta_color
from repro.core.degree_choosable import degree_list_color
from repro.core.marking import marking_process
from repro.errors import InfeasibleListColoringError
from repro.graphs.bfs import bfs_ball, bfs_distances, distance_layers
from repro.graphs.generators import (
    random_graph_with_max_degree,
    random_nice_graph,
    random_regular_graph,
)
from repro.graphs.properties import is_gallai_tree
from repro.graphs.validation import UNCOLORED, validate_coloring
from repro.local.rounds import RoundLedger


class TestEndToEndProperties:
    @given(
        delta=st.integers(min_value=3, max_value=6),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=12, deadline=None)
    def test_delta_color_on_random_nice_graphs(self, delta, seed):
        graph = random_nice_graph(80 + 10 * delta, delta, seed=seed)
        result = delta_color(graph, seed=seed)
        validate_coloring(graph, result.colors, max_colors=delta)

    @given(
        d=st.integers(min_value=3, max_value=6),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=12, deadline=None)
    def test_delta_color_on_regular_graphs(self, d, seed):
        n = 120 if (120 * d) % 2 == 0 else 121
        graph = random_regular_graph(n, d, seed=seed)
        result = delta_color(graph, seed=seed)
        validate_coloring(graph, result.colors, max_colors=d)


class TestBrooksProperty:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_regular_nice_graphs_are_never_gallai(self, seed):
        """The structural fact behind centralized Brooks: a Δ-regular nice
        graph (Δ >= 3) always contains a degree-choosable block."""
        graph = random_regular_graph(60, 3, seed=seed)
        assert not is_gallai_tree(graph)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_degree_lists_on_regular_always_solvable(self, seed):
        graph = random_regular_graph(60, 4, seed=seed)
        lists = [set(range(1, 5)) for _ in range(graph.n)]
        colors = degree_list_color(graph, lists)
        validate_coloring(graph, colors, max_colors=4)


class TestMarkingInvariants:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        p_scale=st.floats(min_value=0.3, max_value=3.0),
    )
    @settings(max_examples=10, deadline=None)
    def test_marks_always_proper_and_structured(self, seed, p_scale):
        graph = random_regular_graph(300, 4, seed=seed)
        colors = [UNCOLORED] * graph.n
        p = min(0.2, 0.01 * p_scale)
        outcome = marking_process(
            graph, set(range(graph.n)), colors, p, 6,
            random.Random(seed), RoundLedger(),
        )
        validate_coloring(graph, colors, allow_partial=True)
        adj_sets = graph.adjacency_sets()
        for t, (u1, u2) in outcome.t_nodes.items():
            assert u1 not in adj_sets[u2]
            assert colors[u1] == 1 and colors[u2] == 1
        # survivors pairwise farther than the backoff
        survivors = sorted(outcome.t_nodes)
        for v in survivors:
            dist = bfs_distances(graph, [v], max_depth=6)
            assert all(dist[u] == -1 for u in survivors if u != v)


class TestSubstrateAlgebra:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        radius=st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=20, deadline=None)
    def test_ball_matches_distances(self, seed, radius):
        graph = random_graph_with_max_degree(60, 4, target_avg_degree=2.5, seed=seed)
        center = seed % graph.n
        ball = set(bfs_ball(graph, center, radius))
        dist = bfs_distances(graph, [center])
        expected = {v for v in range(graph.n) if 0 <= dist[v] <= radius}
        assert ball == expected

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_layers_partition_reachable_set(self, seed):
        graph = random_graph_with_max_degree(80, 4, target_avg_degree=2.5, seed=seed)
        base = [seed % graph.n, (seed * 7 + 1) % graph.n]
        layers = distance_layers(graph, base)
        flattened = [v for layer in layers for v in layer]
        assert len(flattened) == len(set(flattened))
        dist = bfs_distances(graph, base)
        assert sorted(flattened) == [v for v in range(graph.n) if dist[v] != -1]
        for i, layer in enumerate(layers):
            assert all(dist[v] == i for v in layer)

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        k=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=15, deadline=None)
    def test_subgraph_degree_never_increases(self, seed, k):
        graph = random_graph_with_max_degree(60, 5, target_avg_degree=3.0, seed=seed)
        rng = random.Random(seed)
        nodes = rng.sample(range(graph.n), 60 // k)
        sub, originals = graph.subgraph(nodes)
        for i, v in enumerate(originals):
            assert sub.degree(i) <= graph.degree(v)


class TestListColoringFeasibilityProperty:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_deg_plus_one_lists_always_feasible(self, seed):
        """(deg+1)-lists are solvable on every graph — the foundation of
        the whole layering technique."""
        graph = random_graph_with_max_degree(50, 5, target_avg_degree=3.0, seed=seed)
        rng = random.Random(seed)
        lists = [
            set(rng.sample(range(1, 2 * (graph.degree(v) + 1) + 1), graph.degree(v) + 1))
            for v in range(graph.n)
        ]
        for component in graph.connected_components():
            sub, originals = graph.subgraph(component)
            sub_lists = [set(lists[v]) for v in originals]
            try:
                colors = degree_list_color(sub, sub_lists)
            except InfeasibleListColoringError as exc:
                raise AssertionError(
                    "deg+1 instance must always be feasible"
                ) from exc
            for i in range(sub.n):
                assert colors[i] in sub_lists[i]
