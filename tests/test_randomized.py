"""End-to-end tests for the randomized Δ-coloring algorithms (Thms 1, 3)."""

import pytest

from repro.core.randomized import (
    RandomizedParams,
    delta_coloring_large_delta,
    delta_coloring_randomized,
    delta_coloring_small_delta,
)
from repro.errors import AlgorithmContractError, NotNiceGraphError
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    high_girth_regular_graph,
    hypercube,
    random_nice_graph,
    random_regular_graph,
    torus_grid,
)
from repro.graphs.validation import validate_coloring


class TestSmallDelta:
    @pytest.mark.parametrize("seed", range(5))
    def test_cubic_graphs(self, seed):
        g = random_regular_graph(400, 3, seed=seed)
        result = delta_coloring_small_delta(g, seed=seed, strict=True)
        validate_coloring(g, result.colors, max_colors=3)
        assert result.delta == 3

    @pytest.mark.parametrize("seed", range(3))
    def test_high_girth_cubic_exercises_shattering(self, seed):
        g = high_girth_regular_graph(1200, 3, girth=9, seed=seed)
        result = delta_coloring_small_delta(g, seed=seed, strict=True)
        validate_coloring(g, result.colors, max_colors=3)
        assert result.stats["num_dccs"] == 0
        assert result.stats["h_size"] == g.n

    def test_rejects_delta_two(self):
        # a "theta graph"-free Δ=2 graph is a cycle/path: not nice anyway
        with pytest.raises((AlgorithmContractError, NotNiceGraphError)):
            delta_coloring_small_delta(cycle_graph(8))


class TestLargeDelta:
    @pytest.mark.parametrize("d", [4, 5, 6, 8])
    def test_regular_graphs(self, d):
        g = random_regular_graph(300, d, seed=d)
        result = delta_coloring_large_delta(g, seed=d, strict=True)
        validate_coloring(g, result.colors, max_colors=d)

    def test_torus(self):
        g = torus_grid(14, 15)
        result = delta_coloring_large_delta(g, seed=1, strict=True)
        validate_coloring(g, result.colors, max_colors=4)
        # the torus is DCC-everywhere: all nodes fall in B-layers
        assert result.stats["h_size"] == 0

    def test_hypercube(self):
        g = hypercube(6)
        result = delta_coloring_large_delta(g, seed=2, strict=True)
        validate_coloring(g, result.colors, max_colors=6)

    @pytest.mark.parametrize("seed", range(4))
    def test_irregular(self, seed):
        g = random_nice_graph(300, 5, seed=seed)
        result = delta_coloring_large_delta(g, seed=seed, strict=True)
        validate_coloring(g, result.colors, max_colors=5)

    def test_rejects_delta_three(self):
        g = random_regular_graph(60, 3, seed=1)
        with pytest.raises(AlgorithmContractError, match=">= 4"):
            delta_coloring_large_delta(g)

    def test_rejects_clique(self):
        with pytest.raises(NotNiceGraphError):
            delta_coloring_large_delta(complete_graph(6))


class TestParamsAndStats:
    def test_custom_params_leftover_path(self):
        g = high_girth_regular_graph(1000, 3, girth=9, seed=5)
        params = RandomizedParams(
            dcc_radius=2, backoff=6, happiness_radius=3, engine="hybrid",
            seed=5, strict=True,
        )
        result = delta_coloring_randomized(g, params)
        validate_coloring(g, result.colors, max_colors=3)
        # tiny happiness radius must push nodes into phase 6
        assert result.stats["leftover_nodes"] > 0
        assert result.stats["leftover_components"] >= 1

    def test_phase_breakdown_present(self):
        g = random_regular_graph(200, 4, seed=3)
        result = delta_coloring_large_delta(g, seed=3)
        assert result.rounds == sum(result.phase_rounds.values())
        assert any(key.startswith("0:linial") for key in result.phase_rounds)

    def test_presets(self):
        small = RandomizedParams.small_delta(10**5, 3)
        large = RandomizedParams.large_delta(10**5, 16)
        assert small.engine == "deterministic"
        assert large.engine == "hybrid"
        assert small.dcc_radius >= large.dcc_radius

    def test_deterministic_engine_variant(self):
        g = random_regular_graph(300, 4, seed=9)
        params = RandomizedParams(engine="deterministic", seed=9, strict=True)
        result = delta_coloring_randomized(g, params)
        validate_coloring(g, result.colors, max_colors=4)

    def test_random_engine_variant(self):
        g = random_regular_graph(300, 4, seed=10)
        params = RandomizedParams(engine="random", seed=10, strict=True)
        result = delta_coloring_randomized(g, params)
        validate_coloring(g, result.colors, max_colors=4)

    def test_reproducible_given_seed(self):
        g = random_regular_graph(300, 4, seed=11)
        a = delta_coloring_large_delta(g, seed=11)
        b = delta_coloring_large_delta(g, seed=11)
        assert a.colors == b.colors
        assert a.rounds == b.rounds


class TestStress:
    @pytest.mark.parametrize("seed", range(10))
    def test_many_seeds_mixed_families(self, seed):
        if seed % 3 == 0:
            g = random_regular_graph(240, 4 + seed % 3, seed=seed)
            delta = g.max_degree()
        elif seed % 3 == 1:
            g = random_nice_graph(220, 4, seed=seed)
            delta = 4
        else:
            g = torus_grid(8 + seed % 4, 9)
            delta = 4
        result = delta_coloring_randomized(
            g, RandomizedParams(seed=seed, strict=True)
        )
        validate_coloring(g, result.colors, max_colors=delta)
