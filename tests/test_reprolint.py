"""Tests for reprolint, the repo-contract static-analysis pass.

Every rule gets a deliberately-seeded violation (the true positive), a
known-good idiom it must NOT flag (the false-positive guard), and the
module-scoping check.  The framework tests cover suppression comments,
the content-keyed baseline round-trip, and the CLI exit codes.
"""

import io
import json
import textwrap
from pathlib import Path

from repro.devtools import main as lint_main
from repro.devtools.baseline import (
    apply_baseline,
    baseline_key,
    load_baseline,
    save_baseline,
)
from repro.devtools.config import LintConfig
from repro.devtools.framework import (
    Finding,
    module_name_for,
    parse_suppressions,
    suppressed_lines,
)
from repro.devtools.runner import lint_file, lint_paths


def run_lint(tmp_path, rel, source):
    """Lint ``source`` placed at ``rel`` inside a fixture tree.

    The path's ``repro/...`` components give the file its module name
    (module_name_for anchors on the ``repro`` path component), so rules
    scoped to e.g. ``repro.service`` see fixture files as in-repo code.
    """
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    config = LintConfig(root=tmp_path, baseline_path=tmp_path / "baseline.json")
    return lint_file(path, config)


def codes(findings):
    return [f.code for f in findings]


class TestRPL001BlockingInAsync:
    def test_time_sleep_in_async_def_flagged(self, tmp_path):
        findings, _ = run_lint(
            tmp_path,
            "repro/service/gateway.py",
            """
            import time

            async def handle(request):
                time.sleep(0.1)
                return request
            """,
        )
        assert codes(findings) == ["RPL001"]
        assert "time.sleep" in findings[0].message

    def test_direct_solve_and_open_flagged(self, tmp_path):
        findings, _ = run_lint(
            tmp_path,
            "repro/service/server.py",
            """
            from repro.api import solve

            async def handle(graph, config):
                result = solve(graph, config)
                with open("log.txt") as fh:
                    fh.read()
                return result
            """,
        )
        assert sorted(codes(findings)) == ["RPL001", "RPL001"]

    def test_awaited_calls_and_executor_helpers_not_flagged(self, tmp_path):
        findings, _ = run_lint(
            tmp_path,
            "repro/service/gateway.py",
            """
            import asyncio
            import time

            async def handle(loop, graph, config):
                await asyncio.sleep(0)

                def _apply():
                    time.sleep(1)  # runs on the executor thread, not the loop
                    return 1

                return await loop.run_in_executor(None, _apply)
            """,
        )
        assert findings == []

    def test_blocking_argument_of_awaited_call_still_flagged(self, tmp_path):
        findings, _ = run_lint(
            tmp_path,
            "repro/service/gateway.py",
            """
            import time

            async def handle(submit):
                return await submit(time.sleep(1))
            """,
        )
        assert codes(findings) == ["RPL001"]

    def test_engine_code_out_of_scope(self, tmp_path):
        findings, _ = run_lint(
            tmp_path,
            "repro/core/worker.py",
            """
            import time

            async def helper():
                time.sleep(1)
            """,
        )
        assert findings == []


class TestRPL002SeededRandomness:
    def test_global_generator_and_unseeded_random_flagged(self, tmp_path):
        findings, _ = run_lint(
            tmp_path,
            "repro/core/engine.py",
            """
            import random

            def shatter(nodes):
                rng = random.Random()
                random.shuffle(nodes)
                return rng.random()
            """,
        )
        assert sorted(codes(findings)) == ["RPL002", "RPL002"]

    def test_seeded_rng_not_flagged(self, tmp_path):
        findings, _ = run_lint(
            tmp_path,
            "repro/primitives/mis.py",
            """
            import random

            def luby(seed):
                rng = random.Random(seed)
                return rng.random()
            """,
        )
        assert findings == []

    def test_numpy_global_state_flagged_seeded_default_rng_ok(self, tmp_path):
        findings, _ = run_lint(
            tmp_path,
            "repro/graphs/generators.py",
            """
            try:
                import numpy as np
            except Exception:
                np = None

            def sample(n, seed):
                good = np.random.default_rng(seed)
                bad = np.random.rand(n)
                return good, bad
            """,
        )
        assert codes(findings) == ["RPL002"]
        assert "numpy.random.rand" in findings[0].message

    def test_service_tier_out_of_scope(self, tmp_path):
        findings, _ = run_lint(
            tmp_path,
            "repro/service/jitter.py",
            """
            import random

            def backoff_jitter():
                return random.random()
            """,
        )
        assert findings == []


class TestRPL003GuardedNumericImport:
    def test_bare_top_level_numpy_flagged(self, tmp_path):
        findings, _ = run_lint(
            tmp_path,
            "repro/core/kernels.py",
            """
            import numpy as np
            from scipy import sparse
            """,
        )
        assert sorted(codes(findings)) == ["RPL003", "RPL003"]

    def test_guarded_and_lazy_imports_not_flagged(self, tmp_path):
        findings, _ = run_lint(
            tmp_path,
            "repro/core/kernels.py",
            """
            from typing import TYPE_CHECKING

            try:
                import numpy as np
            except Exception:
                np = None

            if TYPE_CHECKING:
                import numpy.typing

            def dense(graph):
                import scipy.sparse as sp
                return sp.csr_matrix(graph)
            """,
        )
        assert findings == []


class TestRPL004WallClockInFingerprint:
    def test_clock_read_flagged(self, tmp_path):
        findings, _ = run_lint(
            tmp_path,
            "repro/service/fingerprint.py",
            """
            import time

            def request_fingerprint(graph, config):
                stamp = time.time()
                return hash((graph, config, stamp))
            """,
        )
        assert codes(findings) == ["RPL004"]

    def test_clock_fine_outside_fingerprint_module(self, tmp_path):
        findings, _ = run_lint(
            tmp_path,
            "repro/service/metrics.py",
            """
            import time

            def observe():
                return time.monotonic()
            """,
        )
        assert findings == []


class TestRPL005TypedExceptInStorage:
    def test_bare_and_broad_excepts_flagged(self, tmp_path):
        findings, _ = run_lint(
            tmp_path,
            "repro/service/storage/journal.py",
            """
            def read_tail(fh):
                try:
                    return fh.read()
                except Exception:
                    return None

            def scan(fh):
                try:
                    return fh.read()
                except:
                    return None
            """,
        )
        assert sorted(codes(findings)) == ["RPL005", "RPL005"]

    def test_typed_handlers_not_flagged(self, tmp_path):
        findings, _ = run_lint(
            tmp_path,
            "repro/service/storage/wal.py",
            """
            def decode(blob):
                try:
                    return blob.decode("utf-8")
                except (OSError, UnicodeDecodeError, ValueError):
                    return None
            """,
        )
        assert findings == []

    def test_broad_except_outside_storage_out_of_scope(self, tmp_path):
        findings, _ = run_lint(
            tmp_path,
            "repro/service/gateway.py",
            """
            def shield(fn):
                try:
                    return fn()
                except Exception:
                    return None
            """,
        )
        assert findings == []


class TestRPL006ValidatedWireAccess:
    def test_raw_subscript_flagged(self, tmp_path):
        findings, _ = run_lint(
            tmp_path,
            "repro/service/server.py",
            """
            def dispatch(request):
                return request["op"]
            """,
        )
        assert codes(findings) == ["RPL006"]
        assert "request['op']" in findings[0].message

    def test_get_and_membership_guard_not_flagged(self, tmp_path):
        findings, _ = run_lint(
            tmp_path,
            "repro/service/server.py",
            """
            def dispatch(request):
                op = request.get("op")
                if "graph" in request and op is not None:
                    return request["graph"], op
                return None
            """,
        )
        assert findings == []

    def test_guard_does_not_leak_to_else_branch(self, tmp_path):
        findings, _ = run_lint(
            tmp_path,
            "repro/service/server.py",
            """
            def dispatch(request):
                if "op" in request:
                    return request["op"]
                else:
                    return request["fallback"]
            """,
        )
        assert codes(findings) == ["RPL006"]
        assert "fallback" in findings[0].message

    def test_other_modules_out_of_scope(self, tmp_path):
        findings, _ = run_lint(
            tmp_path,
            "repro/service/cache.py",
            """
            def probe(request):
                return request["digest"]
            """,
        )
        assert findings == []


class TestRPL007FallbackPair:
    def test_missing_twin_flagged(self, tmp_path):
        findings, _ = run_lint(
            tmp_path,
            "repro/core/kernels.py",
            """
            def _ball_blocks_vectorized(graph):
                return None
            """,
        )
        assert codes(findings) == ["RPL007"]
        assert "no pure-Python twin" in findings[0].message

    def test_undispatched_twin_flagged(self, tmp_path):
        findings, _ = run_lint(
            tmp_path,
            "repro/core/kernels.py",
            """
            def _ball_blocks_vectorized(graph):
                return None

            def _ball_blocks_python(graph):
                return None
            """,
        )
        assert codes(findings) == ["RPL007"]
        assert "never" in findings[0].message

    def test_dispatched_twin_clean(self, tmp_path):
        findings, _ = run_lint(
            tmp_path,
            "repro/core/kernels.py",
            """
            np = None

            def _ball_blocks_vectorized(graph):
                return None

            def _ball_blocks_python(graph):
                return None

            def ball_blocks(graph):
                if np is None:
                    return _ball_blocks_python(graph)
                return _ball_blocks_vectorized(graph)
            """,
        )
        assert findings == []


class TestSuppressions:
    VIOLATION = """
    import time

    async def handle():
        time.sleep(1){inline}
    """

    def test_inline_suppression(self, tmp_path):
        src = self.VIOLATION.format(
            inline="  # reprolint: disable=RPL001 -- warmup happens pre-serve"
        )
        findings, suppressed = run_lint(tmp_path, "repro/service/a.py", src)
        assert findings == []
        assert suppressed == 1

    def test_standalone_suppression_covers_next_line(self, tmp_path):
        findings, suppressed = run_lint(
            tmp_path,
            "repro/service/b.py",
            """
            import time

            async def handle():
                # reprolint: disable=RPL001 -- measured, loop is idle here
                time.sleep(1)
            """,
        )
        assert findings == []
        assert suppressed == 1

    def test_wrong_code_does_not_suppress(self, tmp_path):
        src = self.VIOLATION.format(inline="  # reprolint: disable=RPL002")
        findings, suppressed = run_lint(tmp_path, "repro/service/c.py", src)
        assert codes(findings) == ["RPL001"]
        assert suppressed == 0

    def test_hash_inside_string_is_not_a_suppression(self, tmp_path):
        findings, _ = run_lint(
            tmp_path,
            "repro/service/d.py",
            """
            import time

            async def handle():
                note = "# reprolint: disable=RPL001"
                time.sleep(1)
                return note
            """,
        )
        assert codes(findings) == ["RPL001"]

    def test_parse_extracts_codes_and_reason(self):
        sups = parse_suppressions(
            "x = 1  # reprolint: disable=RPL001,RPL005 -- chaos test needs both\n"
        )
        assert len(sups) == 1
        assert sups[0].codes == ("RPL001", "RPL005")
        assert sups[0].reason == "chaos test needs both"
        assert not sups[0].standalone
        covered = suppressed_lines(sups)
        assert covered[1] == {"RPL001", "RPL005"}


class TestModuleNames:
    def test_src_layout(self):
        assert (
            module_name_for(Path("src/repro/service/storage/journal.py"))
            == "repro.service.storage.journal"
        )

    def test_repro_anchor_without_src(self):
        assert module_name_for(Path("/tmp/x/repro/core/dcc.py")) == "repro.core.dcc"

    def test_init_maps_to_package(self):
        assert module_name_for(Path("src/repro/obs/__init__.py")) == "repro.obs"

    def test_outside_any_package(self):
        assert module_name_for(Path("benchmarks/common.py")) is None


class TestBaseline:
    def _finding(self, source="time.sleep(1)", line=4):
        return Finding(
            path="repro/service/a.py",
            line=line,
            col=4,
            code="RPL001",
            message="blocking call",
            source=source,
        )

    def test_round_trip(self, tmp_path):
        findings = [self._finding(), self._finding(source="time.sleep(2)", line=9)]
        path = tmp_path / "baseline.json"
        save_baseline(path, findings)
        entries = load_baseline(path)
        result = apply_baseline(findings, entries)
        assert result.new == []
        assert len(result.baselined) == 2
        assert result.stale == []

    def test_key_survives_line_drift_but_not_edits(self, tmp_path):
        path = tmp_path / "baseline.json"
        save_baseline(path, [self._finding(line=4)])
        entries = load_baseline(path)
        drifted = apply_baseline([self._finding(line=40)], entries)
        assert drifted.new == [] and len(drifted.baselined) == 1
        edited = apply_baseline([self._finding(source="time.sleep(9)")], entries)
        assert len(edited.new) == 1 and len(edited.stale) == 1

    def test_occurrence_index_disambiguates_identical_lines(self):
        first, second = self._finding(line=4), self._finding(line=8)
        entries = {baseline_key(first, 0)}  # only the first occurrence tolerated
        result = apply_baseline([first, second], entries)
        assert len(result.baselined) == 1
        assert len(result.new) == 1

    def test_unreadable_baseline_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{not json")
        try:
            load_baseline(path)
        except ValueError as exc:
            assert "unreadable baseline" in str(exc)
        else:
            raise AssertionError("expected ValueError")


class TestRunnerAndCLI:
    def _fixture_tree(self, tmp_path):
        pkg = tmp_path / "repro" / "service"
        pkg.mkdir(parents=True)
        (pkg / "gateway.py").write_text(
            textwrap.dedent(
                """
                import time

                async def handle():
                    time.sleep(1)
                """
            )
        )
        return tmp_path

    def test_syntax_error_becomes_rpl000_finding(self, tmp_path):
        findings, _ = run_lint(tmp_path, "repro/core/broken.py", "def f(:\n")
        assert codes(findings) == ["RPL000"]

    def test_lint_paths_reports_and_counts(self, tmp_path):
        root = self._fixture_tree(tmp_path)
        config = LintConfig(root=root, baseline_path=root / "baseline.json")
        report = lint_paths([root], config)
        assert report.files_scanned == 1
        assert len(report.rules_run) >= 7
        assert [f.code for f in report.new] == ["RPL001"]
        assert report.exit_code == 1
        totals = report.findings_total()
        assert totals["RPL001"] == 1
        assert totals["RPL007"] == 0  # every run rule appears, even at zero

    def test_cli_baseline_lifecycle(self, tmp_path):
        root = self._fixture_tree(tmp_path)
        baseline = root / "baseline.json"
        argv = [str(root), "--baseline", str(baseline)]
        out = io.StringIO()
        assert lint_main(argv, out=out) == 1  # new finding, no baseline yet
        assert lint_main(argv + ["--update-baseline"], out=io.StringIO()) == 0
        assert baseline.is_file()
        assert lint_main(argv, out=io.StringIO()) == 0  # baselined now
        assert lint_main(argv + ["--no-baseline"], out=io.StringIO()) == 1

    def test_cli_json_report(self, tmp_path):
        root = self._fixture_tree(tmp_path)
        out = io.StringIO()
        code = lint_main(
            [str(root), "--baseline", str(root / "baseline.json"), "--json"], out=out
        )
        payload = json.loads(out.getvalue())
        assert code == 1 and payload["exit_code"] == 1
        assert payload["summary"]["repro_lint_findings_total"]["RPL001"] == 1
        assert payload["new"][0]["code"] == "RPL001"

    def test_cli_list_rules(self, tmp_path):
        out = io.StringIO()
        assert lint_main(["--list-rules"], out=out) == 0
        listing = out.getvalue()
        for code in ("RPL001", "RPL002", "RPL003", "RPL004", "RPL005", "RPL006", "RPL007"):
            assert code in listing

    def test_cli_missing_path_is_usage_error(self, tmp_path):
        assert lint_main([str(tmp_path / "nope")]) == 2

    def test_repo_itself_lints_clean(self):
        repo = Path(__file__).resolve().parent.parent
        out = io.StringIO()
        code = lint_main(
            [str(repo / "src"), str(repo / "scripts"), str(repo / "benchmarks")],
            out=out,
        )
        assert code == 0, out.getvalue()
