"""Round-complexity assertions: ledger totals stay within documented bounds.

The engine refactors (precomputed active-neighbour arrays in
``SyncNetwork``, CSR adjacency everywhere) must not change *what is
charged* to the :class:`RoundLedger`.  These tests pin the exact coupling
between iterations and charged rounds for the primitives whose cost the
paper reasons about, and bound the iteration counts on paths and cycles —
the instances with known behaviour:

* Linial color reduction: exactly one round per reduction step, fixed
  point after ``len(reduction_schedule(n, Δ))`` steps (the O(log* n)
  quantity; ≤ 2 for Δ = 2 up to n = 32768), palette ≤ (2Δ+O(1))².
* Luby / Ghaffari MIS: exactly 2 rounds per iteration; on paths/cycles
  Luby finishes within 2·log₂(n) iterations for every tested seed.
* Power-graph MIS with exponent k: exactly 2k rounds per iteration.
* Coloring→MIS reduction: exactly ``palette`` rounds.
* The marking process: exactly ``backoff + 2`` rounds.
* The faithful message-passing engine charges exactly one round per
  executed synchronous round (LubyProgram: 2 per MIS iteration).
"""

from __future__ import annotations

import math
import random

import pytest

from repro.core.marking import marking_process
from repro.graphs.generators import cycle_graph, path_graph
from repro.graphs.graph import Graph
from repro.graphs.validation import UNCOLORED
from repro.local.network import SyncNetwork
from repro.local.rounds import RoundLedger
from repro.primitives.linial import linial_coloring, reduction_schedule
from repro.primitives.mis import (
    LubyProgram,
    ghaffari_mis,
    greedy_mis_from_coloring,
    luby_mis,
    power_graph_mis,
)

PATHS_AND_CYCLES = [
    ("path", path_graph, 64),
    ("path", path_graph, 512),
    ("path", path_graph, 4096),
    ("cycle", cycle_graph, 64),
    ("cycle", cycle_graph, 512),
    ("cycle", cycle_graph, 4096),
]
IDS = [f"{kind}-{n}" for kind, _, n in PATHS_AND_CYCLES]


def _assert_mis(graph: Graph, in_set: set[int]) -> None:
    adj = graph.adj
    for v in in_set:
        assert not any(u in in_set for u in adj[v]), "not independent"
    for v in range(graph.n):
        assert v in in_set or any(u in in_set for u in adj[v]), "not maximal"


@pytest.mark.parametrize("kind,maker,n", PATHS_AND_CYCLES, ids=IDS)
def test_linial_rounds_match_schedule(kind, maker, n):
    graph = maker(n)
    ledger = RoundLedger()
    result = linial_coloring(graph, ledger)
    schedule = reduction_schedule(n, 2)
    assert result.iterations == len(schedule)
    assert result.rounds == result.iterations
    assert ledger.total_rounds == result.iterations, (
        "Linial charged rounds beyond its reduction steps"
    )
    # log*-shaped: two steps suffice from n <= 32768 down to the fixed point.
    assert result.iterations <= 2
    # Fixed point is O(Δ²): for Δ = 2 the smallest usable prime is 5 -> 25.
    assert result.palette <= 49
    assert len(set(result.colors)) <= result.palette


@pytest.mark.parametrize("kind,maker,n", PATHS_AND_CYCLES, ids=IDS)
def test_luby_two_rounds_per_iteration(kind, maker, n):
    graph = maker(n)
    bound = 2 * math.log2(n)
    for seed in range(5):
        ledger = RoundLedger()
        result = luby_mis(graph, ledger, random.Random(seed))
        assert not result.undecided
        _assert_mis(graph, result.in_set)
        assert ledger.total_rounds == 2 * result.iterations, (
            "Luby must charge exactly 2 rounds per iteration"
        )
        assert result.iterations <= bound, (
            f"Luby took {result.iterations} iterations on a {kind} of {n} "
            f"(documented bound 2·log2 n = {bound:.0f})"
        )


@pytest.mark.parametrize("kind,maker,n", [("path", path_graph, 512), ("cycle", cycle_graph, 512)], ids=["path-512", "cycle-512"])
def test_ghaffari_two_rounds_per_iteration(kind, maker, n):
    graph = maker(n)
    ledger = RoundLedger()
    result = ghaffari_mis(graph, ledger, random.Random(1))
    assert not result.undecided
    _assert_mis(graph, result.in_set)
    assert ledger.total_rounds == 2 * result.iterations
    # O(log Δ + log 1/ε)-per-node shape; global finish on bounded-degree
    # instances stays well under 6·log2 n.
    assert result.iterations <= 6 * math.log2(n)


@pytest.mark.parametrize("k", [2, 3])
def test_power_graph_mis_charges_2k_per_iteration(k):
    graph = cycle_graph(256)
    ledger = RoundLedger()
    result = power_graph_mis(graph, k, ledger, random.Random(0))
    assert not result.undecided
    assert ledger.total_rounds == 2 * k * result.iterations
    # Ruling-set property of G^k: members pairwise > k apart, everyone
    # within k of a member (cycle distances are easy to check directly).
    members = sorted(result.in_set)
    n = graph.n
    for i, v in enumerate(members):
        w = members[(i + 1) % len(members)]
        gap = (w - v) % n
        assert gap > k
        assert gap <= 2 * k + 1


def test_greedy_mis_rounds_equal_palette():
    graph = cycle_graph(100)
    ledger = RoundLedger()
    linial = linial_coloring(graph)
    result = greedy_mis_from_coloring(graph, linial.colors, linial.palette, ledger)
    _assert_mis(graph, result.in_set)
    assert result.iterations == linial.palette
    assert ledger.total_rounds == linial.palette


@pytest.mark.parametrize("backoff", [5, 6, 8])
def test_marking_charges_backoff_plus_two(backoff):
    graph = cycle_graph(200)
    ledger = RoundLedger()
    colors = [UNCOLORED] * graph.n
    outcome = marking_process(
        graph, set(range(graph.n)), colors, 0.01, backoff,
        random.Random(0), ledger,
    )
    assert outcome.rounds == backoff + 2
    assert ledger.total_rounds == backoff + 2


@pytest.mark.parametrize("kind,maker,n", [("path", path_graph, 256), ("cycle", cycle_graph, 256)], ids=["path-256", "cycle-256"])
def test_engine_luby_round_accounting(kind, maker, n):
    """The SyncNetwork engine charges exactly one round per executed round;
    LubyProgram needs 2 per MIS iteration, so the ledger total is even and
    within the documented iteration bound."""
    graph = maker(n)
    ledger = RoundLedger()
    network = SyncNetwork(graph, ledger)
    contexts = network.run(LubyProgram(seed=3))
    in_set = LubyProgram.extract(contexts)
    _assert_mis(graph, in_set)
    assert ledger.total_rounds % 2 == 0
    assert ledger.total_rounds <= 2 * (2 * math.log2(n) + 2), (
        "engine executed more rounds than the Luby bound allows "
        "(did SyncNetwork start charging setup work?)"
    )


def test_engine_active_subset_round_accounting():
    """Restricting to an active subset must not change what a run charges:
    inactive nodes are silent, and the induced path still completes within
    the Luby bound."""
    graph = cycle_graph(128)
    active = set(range(0, 96))  # an induced path of 96 nodes
    ledger = RoundLedger()
    network = SyncNetwork(graph, ledger, active=active)
    contexts = network.run(LubyProgram(seed=0))
    assert set(contexts) == active
    in_set = LubyProgram.extract(contexts)
    adj = graph.adj
    for v in active:
        neighbors_in = [u for u in adj[v] if u in active]
        if v in in_set:
            assert not any(u in in_set for u in neighbors_in)
        else:
            assert any(u in in_set for u in neighbors_in)
    assert ledger.total_rounds % 2 == 0
    assert ledger.total_rounds <= 2 * (2 * math.log2(96) + 2)
