"""Tests for ruling set constructions (Lemma 20 substitutes)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators import random_regular_graph, torus_grid
from repro.local.rounds import RoundLedger
from repro.primitives.linial import linial_coloring
from repro.primitives.ruling_sets import (
    ruling_forest_aglp,
    ruling_set_from_coloring,
    ruling_set_random,
    verify_ruling_set,
)


class TestAGLP:
    @pytest.mark.parametrize("k", [2, 3, 5, 8])
    def test_guarantees(self, k):
        g = random_regular_graph(400, 3, seed=1)
        ledger = RoundLedger()
        result = ruling_forest_aglp(g, k, ledger)
        ok, reason = verify_ruling_set(g, result.nodes, alpha=k, beta=result.beta)
        assert ok, reason
        assert ledger.total_rounds == result.rounds

    def test_member_subset(self):
        g = torus_grid(10, 10)
        members = set(range(0, g.n, 2))
        result = ruling_forest_aglp(g, 3, members=members)
        ok, reason = verify_ruling_set(g, result.nodes, 3, result.beta, members=members)
        assert ok, reason

    def test_empty_members(self):
        g = torus_grid(5, 5)
        result = ruling_forest_aglp(g, 3, members=set())
        assert result.nodes == set()

    def test_single_member(self):
        g = torus_grid(5, 5)
        result = ruling_forest_aglp(g, 4, members={7})
        assert result.nodes == {7}

    def test_deterministic(self):
        g = random_regular_graph(300, 4, seed=2)
        a = ruling_forest_aglp(g, 4).nodes
        b = ruling_forest_aglp(g, 4).nodes
        assert a == b

    @given(k=st.integers(min_value=2, max_value=6), seed=st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_property_random_graphs(self, k, seed):
        g = random_regular_graph(120, 3, seed=seed)
        result = ruling_forest_aglp(g, k)
        ok, reason = verify_ruling_set(g, result.nodes, alpha=k, beta=result.beta)
        assert ok, reason


class TestRandomRulingSets:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_luby_guarantees(self, k):
        g = random_regular_graph(300, 4, seed=4)
        result = ruling_set_random(g, k, rng=random.Random(1))
        ok, reason = verify_ruling_set(g, result.nodes, alpha=k + 1, beta=k)
        assert ok, reason

    def test_ghaffari_with_cap_and_finisher(self):
        g = random_regular_graph(300, 4, seed=5)
        result = ruling_set_random(
            g, 2, rng=random.Random(2), method="ghaffari", max_iterations=6
        )
        ok, reason = verify_ruling_set(g, result.nodes, alpha=3, beta=2)
        assert ok, reason

    def test_member_subset(self):
        g = random_regular_graph(300, 3, seed=6)
        members = set(range(150))
        result = ruling_set_random(g, 2, rng=random.Random(3), members=members)
        ok, reason = verify_ruling_set(g, result.nodes, 3, 2, members=members)
        assert ok, reason


class TestColoringBased:
    def test_guarantees(self):
        g = random_regular_graph(200, 4, seed=7)
        linial = linial_coloring(g)
        result = ruling_set_from_coloring(g, linial.colors, linial.palette)
        ok, reason = verify_ruling_set(g, result.nodes, alpha=2, beta=1)
        assert ok, reason
        assert result.rounds == linial.palette


class TestVerifier:
    def test_detects_independence_violation(self):
        g = torus_grid(5, 5)
        ok, reason = verify_ruling_set(g, {0, 1}, alpha=2, beta=5)
        assert not ok and "distance" in reason

    def test_detects_domination_violation(self):
        g = torus_grid(9, 9)
        ok, reason = verify_ruling_set(g, {0}, alpha=2, beta=1)
        assert not ok and "beta" in reason

    def test_detects_non_member(self):
        g = torus_grid(5, 5)
        ok, reason = verify_ruling_set(g, {0}, alpha=2, beta=25, members={1, 2})
        assert not ok and "non-members" in reason

    def test_empty_cases(self):
        g = torus_grid(5, 5)
        ok, _ = verify_ruling_set(g, set(), alpha=2, beta=2, members=set())
        assert ok
        ok, _ = verify_ruling_set(g, set(), alpha=2, beta=2, members={1})
        assert not ok
