"""Tests for the repro.service subsystem.

Covers the four layers separately (fingerprint, cache, metrics, gateway)
plus the TCP server/client round-trip, with small graphs throughout so
the suite stays tier-1-fast.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.api import ColoringResult, SolverConfig, solve
from repro.core.randomized import RandomizedParams
from repro.errors import (
    GraphError,
    NotNiceGraphError,
    ServiceOverloadedError,
    ServiceProtocolError,
)
from repro.graphs.generators import complete_graph, random_regular_graph
from repro.graphs.graph import Graph
from repro.graphs.validation import validate_coloring
from repro.service import (
    AsyncColoringClient,
    BatchingGateway,
    ColoringClient,
    ColoringServer,
    ResultCache,
    ServiceMetrics,
    config_fingerprint,
    graph_fingerprint,
    request_fingerprint,
)
from repro.service.cache import estimate_result_nbytes
from repro.service.metrics import percentile
from repro.service.server import config_from_payload, graph_from_payload


def _result(n=4, seed=0, tag="x") -> ColoringResult:
    return ColoringResult(
        algorithm=f"test-{tag}",
        n=n,
        delta=2,
        palette=3,
        colors=tuple((i % 3) + 1 for i in range(n)),
        rounds=5,
        seed=seed,
    )


class TestFingerprint:
    def test_stable_across_calls(self):
        g = random_regular_graph(32, 3, seed=1)
        assert graph_fingerprint(g) == graph_fingerprint(g)

    def test_invariant_under_edge_order_and_orientation(self):
        edges = [(0, 1), (1, 2), (2, 3), (3, 0)]
        a = Graph(4, edges)
        b = Graph(4, [(v, u) for u, v in reversed(edges)])
        assert graph_fingerprint(a) == graph_fingerprint(b)

    def test_different_structure_differs(self):
        assert graph_fingerprint(Graph(4, [(0, 1), (2, 3)])) != graph_fingerprint(
            Graph(4, [(0, 2), (1, 3)])
        )

    def test_isolated_node_count_matters(self):
        assert graph_fingerprint(Graph(3, [(0, 1)])) != graph_fingerprint(
            Graph(2, [(0, 1)])
        )

    def test_config_result_affecting_fields_only(self):
        base = SolverConfig(algorithm="randomized", seed=1)
        assert config_fingerprint(base) == config_fingerprint(
            base.replace(validate=False)
        )
        assert config_fingerprint(base) == config_fingerprint(
            base.replace(on_phase=lambda *a: None)
        )
        assert config_fingerprint(base) == config_fingerprint(
            base.replace(strict=True)
        )
        # strict inside params must not fragment the cache either
        with_params = base.replace(params=RandomizedParams(seed=1))
        assert config_fingerprint(with_params) == config_fingerprint(
            base.replace(params=RandomizedParams(seed=1, strict=True))
        )
        assert config_fingerprint(base) != config_fingerprint(base.replace(seed=2))
        assert config_fingerprint(base) != config_fingerprint(
            base.replace(algorithm="ps")
        )
        assert config_fingerprint(base) != config_fingerprint(
            base.replace(params=RandomizedParams(seed=1))
        )

    def test_request_fingerprint_combines_both(self):
        g1 = random_regular_graph(16, 3, seed=1)
        g2 = random_regular_graph(16, 3, seed=2)
        c = SolverConfig(seed=0)
        assert request_fingerprint(g1, c) != request_fingerprint(g2, c)
        assert request_fingerprint(g1, c) != request_fingerprint(
            g1, c.replace(seed=5)
        )

    def test_order_preserving_relabeling_via_payload_compaction(self):
        """Sparse payload ids compact to the same internal graph."""
        dense, ids_dense = graph_from_payload({"edges": [[0, 1], [1, 2]]})
        sparse, ids_sparse = graph_from_payload({"edges": [[10, 500], [500, 7000]]})
        assert graph_fingerprint(dense) == graph_fingerprint(sparse)
        assert ids_dense is None
        assert ids_sparse == [10, 500, 7000]


class TestResultCache:
    def test_roundtrip_and_counters(self):
        cache = ResultCache(max_entries=4)
        assert cache.get("a") is None
        cache.put("a", _result())
        assert cache.get("a") == _result()
        stats = cache.stats().as_dict()
        assert stats["hits"] == 1 and stats["misses"] == 1 and stats["puts"] == 1
        assert stats["hit_rate"] == 0.5

    def test_lru_eviction_order(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", _result(tag="a"))
        cache.put("b", _result(tag="b"))
        assert cache.get("a") is not None  # refresh a; b is now LRU
        cache.put("c", _result(tag="c"))
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        assert cache.stats().evictions_lru == 1

    def test_byte_bound_evicts(self):
        small = _result(n=4)
        per_entry = estimate_result_nbytes(small)
        cache = ResultCache(max_entries=100, max_bytes=int(per_entry * 2.5))
        for key in ("a", "b", "c", "d"):
            cache.put(key, _result(n=4, tag=key))
        stats = cache.stats()
        assert stats.entries == 2
        assert stats.bytes <= per_entry * 2.5
        assert stats.evictions_lru == 2

    def test_ttl_expiry(self):
        now = [0.0]
        cache = ResultCache(max_entries=4, ttl_s=10.0, clock=lambda: now[0])
        cache.put("a", _result())
        assert cache.get("a") is not None
        now[0] = 10.1
        assert cache.get("a") is None
        assert cache.stats().evictions_ttl == 1

    def test_byte_accounting_tracks_entries(self):
        cache = ResultCache(max_entries=8)
        cache.put("a", _result(n=4))
        one = cache.stats().bytes
        cache.put("b", _result(n=400))
        assert cache.stats().bytes > one
        cache.put("a", _result(n=4))  # refresh does not double-count
        assert cache.stats().entries == 2
        cache.clear()
        assert cache.stats().bytes == 0 and len(cache) == 0


class TestMetrics:
    def test_percentiles_nearest_rank(self):
        samples = sorted(float(i) for i in range(1, 101))
        assert percentile(samples, 50) == 50.0
        assert percentile(samples, 99) == 99.0
        assert percentile(samples, 100) == 100.0
        # odd-length windows: nearest-rank p50 is the true median (ceil,
        # not banker's round, of the half-rank)
        assert percentile([1.0, 2.0, 3.0, 4.0, 5.0], 50) == 3.0
        assert percentile([7.0], 50) == 7.0
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_snapshot_shape(self):
        clock = [0.0]
        metrics = ServiceMetrics(clock=lambda: clock[0])
        clock[0] = 2.0
        metrics.record_request(0.010, cached=False)
        metrics.record_request(0.001, cached=True)
        metrics.record_rejected()
        metrics.record_batch(2)
        metrics.set_queue_depth(3)
        metrics.set_queue_depth(1)
        snap = metrics.snapshot()
        assert snap["completed"] == 2 and snap["cached"] == 1
        assert snap["rejected"] == 1
        assert snap["qps"] == 1.0  # 2 requests / 2 s
        assert snap["cache_hit_rate"] == 0.5
        assert snap["queue_depth"] == 1 and snap["queue_depth_peak"] == 3
        assert snap["latency"]["p50_ms"] in (1.0, 10.0)
        assert snap["mean_batch_size"] == 2.0


class TestGateway:
    def test_cache_hit_and_bit_identity(self):
        graph = random_regular_graph(32, 3, seed=1)
        config = SolverConfig(algorithm="auto", seed=2)

        async def main():
            async with BatchingGateway() as gateway:
                first = await gateway.submit(graph, config)
                second = await gateway.submit(graph, config)
                return first, second

        first, second = asyncio.run(main())
        assert not first.cached and second.cached
        assert first.fingerprint == second.fingerprint
        assert first.result.content_digest() == second.result.content_digest()
        fresh = solve(graph, config)
        assert fresh.as_dict()["colors"] == list(first.result.colors)

    def test_coalesces_concurrent_duplicates(self):
        graph = random_regular_graph(64, 3, seed=3)
        config = SolverConfig(seed=0)

        async def main():
            async with BatchingGateway() as gateway:
                replies = await asyncio.gather(
                    *(gateway.submit(graph, config) for _ in range(4))
                )
                return gateway, replies

        gateway, replies = asyncio.run(main())
        digests = {r.result.content_digest() for r in replies}
        assert len(digests) == 1
        assert gateway.coalesced >= 1
        # only one actual solve happened
        assert gateway.cache.stats().puts == 1

    def test_rejects_when_queue_full_without_hanging(self):
        graphs = [random_regular_graph(128, 3, seed=s) for s in range(10)]
        config = SolverConfig(seed=0, validate=False)

        async def main():
            async with BatchingGateway(max_queue=2, max_batch=2) as gateway:
                outcomes = await asyncio.wait_for(
                    asyncio.gather(
                        *(gateway.submit(g, config) for g in graphs),
                        return_exceptions=True,
                    ),
                    timeout=60,
                )
                return gateway, outcomes

        gateway, outcomes = asyncio.run(main())
        rejected = [o for o in outcomes if isinstance(o, ServiceOverloadedError)]
        served = [o for o in outcomes if not isinstance(o, BaseException)]
        assert rejected and served
        assert len(rejected) + len(served) == len(graphs)
        assert gateway.metrics.rejected == len(rejected)

    def test_follower_bound_sheds_duplicate_floods(self):
        """Coalesced waiters are bounded too: a flood of duplicates of one
        slow in-flight request is shed past max_followers."""
        graph = random_regular_graph(2048, 4, seed=11)
        config = SolverConfig(seed=0, validate=False)

        async def main():
            async with BatchingGateway(max_queue=4, max_followers=3) as gateway:
                outcomes = await asyncio.wait_for(
                    asyncio.gather(
                        *(gateway.submit(graph, config) for _ in range(10)),
                        return_exceptions=True,
                    ),
                    timeout=120,
                )
                return gateway, outcomes

        gateway, outcomes = asyncio.run(main())
        rejected = [o for o in outcomes if isinstance(o, ServiceOverloadedError)]
        served = [o for o in outcomes if not isinstance(o, BaseException)]
        assert len(served) >= 1 and len(rejected) >= 1
        assert len(served) + len(rejected) == 10
        # one solve served every non-rejected duplicate
        assert gateway.cache.stats().puts == 1
        digests = {o.result.content_digest() for o in served}
        assert len(digests) == 1

    def test_engine_error_does_not_poison_gateway(self):
        bad = complete_graph(5)
        good = random_regular_graph(32, 3, seed=1)

        async def main():
            async with BatchingGateway() as gateway:
                with pytest.raises(NotNiceGraphError) as excinfo:
                    await gateway.submit(bad, SolverConfig(algorithm="randomized"))
                reply = await gateway.submit(good, SolverConfig())
                return excinfo.value, reply, gateway.metrics.failed

        error, reply, failed = asyncio.run(main())
        assert type(error).__name__ == "NotNiceGraphError"
        assert reply.result.palette == 3
        assert failed == 1

    def test_micro_batches_form_under_concurrency(self):
        graphs = [random_regular_graph(96, 3, seed=s) for s in range(6)]
        config = SolverConfig(seed=0, validate=False)

        async def main():
            async with BatchingGateway(max_batch=4, max_wait_s=0.05) as gateway:
                await asyncio.gather(*(gateway.submit(g, config) for g in graphs))
                return gateway.metrics.batches, gateway.metrics.batched_requests

        batches, batched = asyncio.run(main())
        assert batched == len(graphs)
        assert batches < len(graphs)  # at least one multi-request batch formed


class TestProtocolParsing:
    def test_graph_payload_with_n(self):
        graph, ids = graph_from_payload({"n": 5, "edges": [[0, 1], [3, 4]]})
        assert graph.n == 5 and graph.num_edges == 2 and ids is None

    def test_graph_payload_rejects_garbage(self):
        with pytest.raises(ServiceProtocolError):
            graph_from_payload({"edges": "nope"})
        with pytest.raises(ServiceProtocolError):
            graph_from_payload({"edges": [[0, 1, 2]]})
        # arity errors that cancel out in total length must not re-pair
        with pytest.raises(ServiceProtocolError):
            graph_from_payload({"edges": [[0, 1, 2], [3]]})
        with pytest.raises(ServiceProtocolError):
            graph_from_payload({"edges": [7, 8]})
        with pytest.raises(ServiceProtocolError):
            graph_from_payload({"n": -1, "edges": []})
        with pytest.raises(GraphError):
            graph_from_payload({"n": 3, "edges": [[0, 0]]})
        with pytest.raises(GraphError):
            graph_from_payload({"n": 3, "edges": [[0, 1], [1, 0]]})

    def test_config_payload(self):
        config = config_from_payload(
            {"algorithm": "ps", "seed": 4, "params": {"backoff": 7}}
        )
        assert config.algorithm == "ps" and config.seed == 4
        assert config.params.backoff == 7
        assert config_from_payload(None) == SolverConfig()
        with pytest.raises(ServiceProtocolError):
            config_from_payload({"nope": 1})
        with pytest.raises(ServiceProtocolError):
            config_from_payload({"params": {"nope": 1}})


class TestServerClient:
    def test_tcp_roundtrip_sync_and_async(self):
        graph = random_regular_graph(48, 3, seed=5)

        async def main():
            server = ColoringServer(port=0, workers=1, max_queue=16)
            await server.start()
            try:
                async with AsyncColoringClient(port=server.port) as client:
                    assert await client.ping()
                    first = await client.solve(graph, algorithm="auto", seed=1)
                    second = await client.solve(graph, algorithm="auto", seed=1)
                    stats = await client.stats()

                def sync_calls():
                    with ColoringClient(port=server.port) as sync_client:
                        return sync_client.solve(
                            {"edges": [[10, 20], [20, 30]]}, algorithm="greedy"
                        )

                relabeled = await asyncio.get_running_loop().run_in_executor(
                    None, sync_calls
                )
                return first, second, stats, relabeled
            finally:
                await server.close()

        first, second, stats, relabeled = asyncio.run(main())
        assert not first.cached and second.cached
        assert first.result.content_digest() == second.result.content_digest()
        validate_coloring(graph, list(first.result.colors), max_colors=first.result.palette)
        # the wire schema round-trips into a real, equal ColoringResult
        assert ColoringResult.from_dict(first.result.as_dict()) == first.result
        assert first.result.as_dict()["colors"] == list(
            solve(graph, SolverConfig(algorithm="auto", seed=1)).colors
        )
        assert stats["metrics"]["completed"] >= 2
        assert stats["cache"]["hits"] >= 1
        assert relabeled.node_ids == [10, 20, 30]
        assert len(relabeled.result.colors) == 3

    def test_server_reports_protocol_engine_and_overload_errors(self):
        async def main():
            server = ColoringServer(
                port=0, workers=1, max_queue=1, max_batch=1, max_wait_s=0.0
            )
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(port=server.port)

                async def ask(obj):
                    writer.write((json.dumps(obj) + "\n").encode())
                    await writer.drain()
                    return json.loads(await reader.readline())

                bad_json = await asyncio.wait_for(ask({"op": "wat", "id": 1}), 30)
                engine = await asyncio.wait_for(
                    ask(
                        {
                            "id": 2,
                            "op": "solve",
                            "graph": {
                                "n": 4,
                                "edges": [
                                    [0, 1], [0, 2], [0, 3], [1, 2], [1, 3], [2, 3]
                                ],
                            },
                            "config": {"algorithm": "deterministic"},
                        }
                    ),
                    60,
                )
                writer.close()
                await writer.wait_closed()
                return bad_json, engine
            finally:
                await server.close()

        bad_json, engine = asyncio.run(main())
        assert not bad_json["ok"] and bad_json["error"]["type"] == "protocol"
        assert not engine["ok"] and engine["error"]["type"] == "engine"

    def test_overload_surfaces_as_overloaded_error(self):
        graphs = [random_regular_graph(256, 3, seed=s) for s in range(8)]

        async def main():
            server = ColoringServer(
                port=0, workers=1, max_queue=1, max_batch=1, max_wait_s=0.0
            )
            await server.start()
            try:
                async with AsyncColoringClient(port=server.port) as client:
                    outcomes = await asyncio.wait_for(
                        asyncio.gather(
                            *(
                                client.solve(g, validate=False, seed=0)
                                for g in graphs
                            ),
                            return_exceptions=True,
                        ),
                        timeout=60,
                    )
                return outcomes
            finally:
                await server.close()

        outcomes = asyncio.run(main())
        rejected = [o for o in outcomes if isinstance(o, ServiceOverloadedError)]
        served = [o for o in outcomes if not isinstance(o, BaseException)]
        assert rejected, "burst past max_queue=1 must shed load"
        assert served, "admitted requests must still complete"
        assert len(rejected) + len(served) == len(graphs)


class TestHarnessServiceSweep:
    def test_service_load_sweep_reports_hit_rate_gradient(self):
        from repro.analysis.harness import service_load_sweep

        points = service_load_sweep(
            duplicate_ratios=(0.0, 0.8),
            n=48,
            delta=3,
            requests=20,
            hot_instances=2,
            seed=1,
        )
        assert len(points) == 2
        cold, hot = points
        assert cold.measurement.meta["hit_rate"] == 0.0
        assert (
            hot.measurement.meta["hit_rate"] > 0.0
            or hot.measurement.meta["coalesced"] > 0
        )
        for point in points:
            assert point.measurement.meta["qps"] > 0
            assert "p99_ms" in point.measurement.meta


class TestCLI:
    def test_serve_subcommand_registered(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--port", "0", "--max-queue", "7", "--cache-ttl", "5"]
        )
        assert args.func.__name__ == "_cmd_serve"
        assert args.max_queue == 7 and args.cache_ttl == 5.0
