"""Tests for the service's graph-stream surface.

Covers the version-chained update fingerprints, the :class:`GraphStore`,
cost-aware admission in the gateway, and the ``update`` verb end to end
(gateway-level and over TCP), with small graphs throughout so the suite
stays tier-1-fast.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.analysis.harness import carve_matching
from repro.api import SolverConfig
from repro.errors import (
    EdgeNotPresentError,
    IncrementalUpdateError,
    ServiceOverloadedError,
    StaleParentError,
)
from repro.graphs.generators import random_regular_graph
from repro.graphs.graph import Graph
from repro.graphs.validation import validate_coloring
from repro.service import (
    BatchingGateway,
    ColoringClient,
    ColoringServer,
    GraphStore,
    config_fingerprint,
    request_fingerprint,
    update_fingerprint,
)


def updatable_instance(n=64, delta=4, slack=4, seed=0):
    full = random_regular_graph(n, delta, seed=seed)
    matching = carve_matching(full, slack)
    return full.apply_updates(removed=matching), matching


class TestUpdateFingerprint:
    def test_deterministic_and_order_invariant(self):
        cfg = config_fingerprint(SolverConfig())
        a = update_fingerprint("p" * 64, [(0, 1), (2, 3)], [(4, 5)], cfg)
        b = update_fingerprint("p" * 64, [(3, 2), (0, 1)], [(5, 4)], cfg)
        assert a == b

    def test_delta_and_lineage_sensitive(self):
        cfg = config_fingerprint(SolverConfig())
        base = update_fingerprint("p" * 64, [(0, 1)], [], cfg)
        assert base != update_fingerprint("q" * 64, [(0, 1)], [], cfg)
        assert base != update_fingerprint("p" * 64, [(0, 2)], [], cfg)
        assert base != update_fingerprint("p" * 64, [], [(0, 1)], cfg)
        assert base != update_fingerprint(
            "p" * 64, [(0, 1)], [], config_fingerprint(SolverConfig(seed=7))
        )

    def test_out_of_range_ids_rejected_not_hashed(self):
        # (u << 32) | v is only injective below 2**31: without the range
        # check, [(0, 2**32 + 5)] would collide with [(1, 5)] and could
        # serve a cached child for a different delta.
        from repro.errors import ServiceProtocolError

        cfg = config_fingerprint(SolverConfig())
        for bad in ([(0, 2**32 + 5)], [(2**31, 0)], [(-1, 2)]):
            with pytest.raises(ServiceProtocolError):
                update_fingerprint("p" * 64, bad, [], cfg)
        ok = update_fingerprint("p" * 64, [(1, 5)], [], cfg)
        assert len(ok) == 64

    def test_disjoint_from_solve_keyspace(self):
        # An update digest must never collide with a content-addressed
        # solve digest: repaired colorings are valid but not bit-identical
        # to fresh solves of the same child graph.
        g = Graph(3, [(0, 1)])
        cfg = SolverConfig()
        solve_key = request_fingerprint(g, cfg)
        child_key = update_fingerprint(
            solve_key, [(1, 2)], [], config_fingerprint(cfg)
        )
        assert child_key != request_fingerprint(
            g.apply_updates(added=[(1, 2)]), cfg
        )


class TestGraphStore:
    def test_put_get_and_lru_eviction(self):
        store = GraphStore(max_entries=2)
        graphs = [Graph(3, [(0, i % 2 + 1)]) for i in range(3)]
        for i, g in enumerate(graphs):
            store.put(f"k{i}", g)
        assert store.get("k0") is None  # least recently used, evicted
        assert store.get("k2") is graphs[2]
        assert store.stats()["evictions"] == 1

    def test_get_refreshes_recency(self):
        store = GraphStore(max_entries=2)
        a, b, c = (Graph(2, [(0, 1)]) for _ in range(3))
        store.put("a", a)
        store.put("b", b)
        assert store.get("a") is a  # touch
        store.put("c", c)
        assert store.get("b") is None  # b was the stale one
        assert store.get("a") is a

    def test_byte_bound_evicts(self):
        big = random_regular_graph(256, 4, seed=0)
        store = GraphStore(max_entries=64, max_bytes=3000)
        store.put("a", big)
        store.put("b", big)
        assert len(store) == 1  # each entry alone exceeds the bound


class TestGatewayUpdates:
    def test_update_chain_and_replay(self):
        base, matching = updatable_instance()

        async def drive():
            async with BatchingGateway(max_queue=8) as gateway:
                first = await gateway.submit(base, SolverConfig(seed=1))
                upd = await gateway.submit_update(
                    first.fingerprint, edges_added=[matching[0]]
                )
                assert upd.parent_digest == first.fingerprint
                assert not upd.cached
                child_graph = gateway.graph_store.get(upd.fingerprint)
                assert child_graph is not None
                assert child_graph.has_edge(*matching[0])
                validate_coloring(
                    child_graph, list(upd.result.colors),
                    max_colors=upd.result.palette,
                )
                # chain a second update off the child
                upd2 = await gateway.submit_update(
                    upd.fingerprint, edges_added=[matching[1]],
                    edges_removed=[matching[0]],
                )
                assert upd2.parent_digest == upd.fingerprint
                # replaying the first delta hits the cache bit-identically
                replay = await gateway.submit_update(
                    first.fingerprint, edges_added=[matching[0]]
                )
                assert replay.cached
                assert (
                    replay.result.content_digest() == upd.result.content_digest()
                )
                assert replay.update.get("op") == "batch"

        asyncio.run(drive())

    def test_unknown_parent_raises_stale(self):
        async def drive():
            async with BatchingGateway() as gateway:
                with pytest.raises(StaleParentError):
                    await gateway.submit_update("0" * 64, edges_added=[(0, 1)])

        asyncio.run(drive())

    def test_rejected_delta_keeps_gateway_serving(self):
        base, matching = updatable_instance()

        async def drive():
            async with BatchingGateway() as gateway:
                first = await gateway.submit(base, SolverConfig(seed=1))
                with pytest.raises(EdgeNotPresentError):
                    await gateway.submit_update(
                        first.fingerprint, edges_removed=[matching[0]]
                    )
                # capacity was released; the gateway still serves
                upd = await gateway.submit_update(
                    first.fingerprint, edges_added=[matching[0]]
                )
                assert not upd.cached
                assert gateway.stats()["outstanding"] == 0
                assert gateway.stats()["outstanding_cost"] == 0

        asyncio.run(drive())


class TestCostAwareAdmission:
    def test_oversize_request_admitted_when_idle(self):
        graph = random_regular_graph(128, 4, seed=0)

        async def drive():
            async with BatchingGateway(max_cost=1) as gateway:
                reply = await gateway.submit(graph, SolverConfig(seed=0))
                assert reply.result.n == 128

        asyncio.run(drive())

    def test_cost_bound_sheds_backlog(self):
        # One big in-flight instance fills max_cost; a second big one is
        # shed while a toy one still fits — admission meters work, not
        # request count.  The in-flight leader blocks on an event (lazy
        # factory) so occupancy is deterministic, not a timing race.
        import threading

        big = [random_regular_graph(512, 4, seed=s) for s in range(2)]
        toy = random_regular_graph(16, 3, seed=9)
        big_cost = 512 + big[0].num_edges
        release = threading.Event()

        def blocked_factory():
            release.wait(30)
            return big[0]

        async def drive():
            async with BatchingGateway(
                max_queue=16, max_cost=big_cost + 100, max_wait_s=0.0,
                max_batch=1,
            ) as gateway:
                config = SolverConfig(seed=0, validate=False)
                first = asyncio.ensure_future(
                    gateway.submit(
                        blocked_factory, config,
                        fingerprint="a" * 64, cost=big_cost,
                    )
                )
                while gateway.stats()["outstanding"] == 0:
                    await asyncio.sleep(0.001)
                with pytest.raises(ServiceOverloadedError):
                    await gateway.submit(big[1], config)
                toy_reply = await gateway.submit(toy, config)
                assert toy_reply.result.n == 16
                release.set()
                await first
                assert gateway.stats()["outstanding_cost"] == 0
                assert gateway.metrics.rejected == 1

        try:
            asyncio.run(drive())
        finally:
            release.set()

    def test_request_count_bound_still_applies(self):
        import threading

        toy = [random_regular_graph(12, 3, seed=s) for s in range(2)]
        release = threading.Event()

        def blocked_factory():
            release.wait(30)
            return toy[0]

        async def drive():
            async with BatchingGateway(
                max_queue=1, max_cost=10**9, max_wait_s=0.0, max_batch=1
            ) as gateway:
                config = SolverConfig(seed=0, validate=False)
                first = asyncio.ensure_future(
                    gateway.submit(
                        blocked_factory, config, fingerprint="b" * 64, cost=40,
                    )
                )
                while gateway.stats()["outstanding"] == 0:
                    await asyncio.sleep(0.001)
                with pytest.raises(ServiceOverloadedError):
                    await gateway.submit(toy[1], config)
                release.set()
                await first

        try:
            asyncio.run(drive())
        finally:
            release.set()


class TestUpdateOverTCP:
    def test_update_verb_roundtrip(self):
        base, matching = updatable_instance()

        async def drive():
            server = ColoringServer(port=0, workers=1)
            await server.start()
            try:
                port = server.port

                def client_flow():
                    with ColoringClient(port=port, timeout=60.0) as client:
                        solved = client.solve(base, seed=1)
                        first = client.update(
                            solved.fingerprint, edges_added=[matching[0]]
                        )
                        assert first.parent_digest == solved.fingerprint
                        assert first.update["edges_added"] == 1
                        child = base.apply_updates(added=[matching[0]])
                        validate_coloring(
                            child, list(first.result.colors),
                            max_colors=first.result.palette,
                        )
                        replay = client.update(
                            solved.fingerprint, edges_added=[matching[0]]
                        )
                        assert replay.cached
                        with pytest.raises(StaleParentError):
                            client.update("f" * 64, edges_added=[[0, 1]])
                        with pytest.raises(IncrementalUpdateError):
                            client.update(
                                first.fingerprint, edges_added=[matching[0]]
                            )
                        stats = client.stats()
                        assert stats["graph_store"]["entries"] >= 2
                        return True

                ok = await asyncio.get_running_loop().run_in_executor(
                    None, client_flow
                )
                assert ok
            finally:
                await server.close()

        asyncio.run(drive())

    def test_stale_parent_fallback_resolves_and_reseeds(self):
        """update(fallback_graph=...) must turn a stale_parent error into
        a fresh solve of the locally-applied child and re-seed the chain:
        the reply's fingerprint is a valid parent for further updates."""
        base, matching = updatable_instance()

        async def drive():
            server = ColoringServer(port=0, workers=1)
            await server.start()
            try:
                port = server.port

                def client_flow():
                    with ColoringClient(port=port, timeout=60.0) as client:
                        # unknown digest without a fallback still raises
                        with pytest.raises(StaleParentError):
                            client.update("e" * 64, edges_added=[matching[0]])
                        # a one-shot iterable must survive both the wire
                        # request and the local fallback delta
                        reseeded = client.update(
                            "e" * 64,
                            edges_added=(e for e in [matching[0]]),
                            fallback_graph=base,
                            seed=1,
                        )
                        # a re-solve, not a repair: no lineage fields
                        assert reseeded.update is None
                        assert reseeded.parent_digest is None
                        child = base.apply_updates(added=[matching[0]])
                        validate_coloring(
                            child, list(reseeded.result.colors),
                            max_colors=reseeded.result.palette,
                        )
                        # the chain continues off the re-seeded parent
                        chained = client.update(
                            reseeded.fingerprint, edges_added=[matching[1]]
                        )
                        assert chained.parent_digest == reseeded.fingerprint
                        grandchild = child.apply_updates(added=[matching[1]])
                        validate_coloring(
                            grandchild, list(chained.result.colors),
                            max_colors=chained.result.palette,
                        )
                        return True

                ok = await asyncio.get_running_loop().run_in_executor(
                    None, client_flow
                )
                assert ok
            finally:
                await server.close()

        asyncio.run(drive())

    def test_fallback_keeps_typed_delta_rejections(self):
        """An invalid delta must raise the same typed error whether the
        parent is cached (server-side rejection) or evicted (local
        fallback application)."""
        base, matching = updatable_instance()
        present = next(base.edges())

        async def drive():
            server = ColoringServer(port=0, workers=1)
            await server.start()
            try:
                port = server.port

                def client_flow():
                    with ColoringClient(port=port, timeout=60.0) as client:
                        with pytest.raises(IncrementalUpdateError):
                            client.update(
                                "c" * 64,
                                edges_added=[present],
                                fallback_graph=base,
                            )
                        with pytest.raises(IncrementalUpdateError):
                            client.update(
                                "c" * 64,
                                edges_removed=[matching[0]],
                                fallback_graph=base,
                            )
                        return True

                ok = await asyncio.get_running_loop().run_in_executor(
                    None, client_flow
                )
                assert ok
            finally:
                await server.close()

        asyncio.run(drive())

    def test_async_client_stale_parent_fallback(self):
        base, matching = updatable_instance()

        async def drive():
            server = ColoringServer(port=0, workers=1)
            await server.start()
            try:
                from repro.service.client import AsyncColoringClient

                async with AsyncColoringClient(port=server.port) as client:
                    with pytest.raises(StaleParentError):
                        await client.update("d" * 64, edges_added=[matching[0]])
                    reseeded = await client.update(
                        "d" * 64,
                        edges_added=[matching[0]],
                        fallback_graph=base,
                    )
                    assert reseeded.update is None
                    chained = await client.update(
                        reseeded.fingerprint, edges_added=[matching[1]]
                    )
                    assert chained.parent_digest == reseeded.fingerprint
            finally:
                await server.close()

        asyncio.run(drive())

    def test_malformed_update_requests(self):
        async def drive():
            server = ColoringServer(port=0, workers=1)
            await server.start()
            try:
                port = server.port

                def client_flow():
                    import json
                    import socket

                    with socket.create_connection(("127.0.0.1", port), 10) as sock:
                        reader = sock.makefile("r", encoding="utf-8")

                        def roundtrip(payload):
                            sock.sendall(
                                (json.dumps(payload) + "\n").encode("utf-8")
                            )
                            return json.loads(reader.readline())

                        no_parent = roundtrip({"id": 1, "op": "update"})
                        assert no_parent["error"]["type"] == "protocol"
                        bad_edges = roundtrip({
                            "id": 2, "op": "update", "parent_digest": "x" * 64,
                            "edges_added": [[1, 2, 3]],
                        })
                        assert bad_edges["error"]["type"] == "protocol"
                        # huge ids must be a protocol error (a prompt
                        # reply), never an unanswered dead request
                        huge = roundtrip({
                            "id": 4, "op": "update", "parent_digest": "x" * 64,
                            "edges_added": [[2**31, 2**31 + 1]],
                        })
                        assert huge["error"]["type"] == "protocol"
                        stale = roundtrip({
                            "id": 3, "op": "update", "parent_digest": "x" * 64,
                            "edges_added": [[0, 1]],
                        })
                        assert stale["error"]["type"] == "stale_parent"
                    return True

                assert await asyncio.get_running_loop().run_in_executor(
                    None, client_flow
                )
            finally:
                await server.close()

        asyncio.run(drive())


class TestChainEngineEquivalence:
    def test_gateway_chain_matches_solve_incremental(self):
        """The gateway's long-lived chain-head engine must reproduce the
        old re-materialize-per-update path bit for bit: same colors,
        same seed propagation, same content digests down the chain."""
        from repro.api import solve_incremental

        base, matching = updatable_instance()
        config = SolverConfig(seed=1)

        async def drive():
            async with BatchingGateway() as gateway:
                solved = await gateway.submit(base, config)
                upd1 = await gateway.submit_update(
                    solved.fingerprint, edges_added=[matching[0]]
                )
                upd2 = await gateway.submit_update(
                    upd1.fingerprint,
                    edges_added=[matching[1]],
                    edges_removed=[matching[0]],
                )
                return solved, upd1, upd2

        def canonical(result):
            # strip the nested repair-timing noise (the top-level
            # wall_time_s is already excluded by content_digest; the
            # per-update one inside stats is equally non-content)
            payload = result.as_dict()
            payload.pop("wall_time_s", None)
            for section in ("phase_stats", "stats"):
                for stats in payload.get(section, {}).values():
                    if isinstance(stats, dict):
                        for key in ("wall_time_s", "wall_s", "rung_wall_s"):
                            stats.pop(key, None)
            return payload

        solved, upd1, upd2 = asyncio.run(drive())
        # replay the same chain through the pre-engine facade
        old1 = solve_incremental(base, solved.result, edges_added=[matching[0]])
        assert list(upd1.result.colors) == list(old1.result.colors)
        assert canonical(upd1.result) == canonical(old1.result)
        assert upd1.result.seed == old1.result.seed == solved.result.seed
        old2 = solve_incremental(
            old1.graph, old1.result,
            edges_added=[matching[1]], edges_removed=[matching[0]],
        )
        assert list(upd2.result.colors) == list(old2.result.colors)
        assert canonical(upd2.result) == canonical(old2.result)

    def test_chain_head_engine_lives_in_graph_store(self):
        """Only the chain head stays updatable (one engine per chain);
        every digest in the chain still serves snapshot reads."""
        base, matching = updatable_instance()

        async def drive():
            async with BatchingGateway() as gateway:
                solved = await gateway.submit(base, SolverConfig(seed=1))
                assert gateway.graph_store.stats()["chains"] == 0
                upd1 = await gateway.submit_update(
                    solved.fingerprint, edges_added=[matching[0]]
                )
                assert gateway.graph_store.stats()["chains"] == 1
                # a snapshot read at the head does not lose the engine
                assert gateway.graph_store.get(upd1.fingerprint) is not None
                assert gateway.graph_store.stats()["chains"] == 1
                upd2 = await gateway.submit_update(
                    upd1.fingerprint, edges_added=[matching[1]]
                )
                # the engine moved to the new head — still one chain
                assert gateway.graph_store.stats()["chains"] == 1
                # the root's solve-time graph and the live head serve
                # snapshot reads; the superseded intermediate version
                # moved with the engine, so branching from it degrades
                # to the retriable stale-parent path (the client's
                # fallback_graph recovery), never to a wrong answer
                assert gateway.graph_store.get(solved.fingerprint) is not None
                assert gateway.graph_store.get(upd2.fingerprint) is not None
                assert gateway.graph_store.get(upd1.fingerprint) is None
                with pytest.raises(StaleParentError):
                    await gateway.submit_update(
                        upd1.fingerprint, edges_added=[matching[2]]
                    )
                # ...while replaying the head's exact delta still hits
                # the result cache bit-identically
                replay = await gateway.submit_update(
                    upd1.fingerprint, edges_added=[matching[1]]
                )
                assert replay.cached
                assert (
                    replay.result.content_digest()
                    == upd2.result.content_digest()
                )

        asyncio.run(drive())


class TestDynamicBackendWire:
    def test_update_backend_dynamic_over_tcp(self):
        base, matching = updatable_instance()

        async def drive():
            server = ColoringServer(port=0, workers=1)
            await server.start()
            try:
                port = server.port

                def client_flow():
                    with ColoringClient(port=port, timeout=60.0) as client:
                        solved = client.solve(base, seed=1)
                        upd = client.update(
                            solved.fingerprint,
                            edges_added=[matching[0]],
                            backend="dynamic",
                        )
                        child = base.apply_updates(added=[matching[0]])
                        validate_coloring(
                            child, list(upd.result.colors),
                            max_colors=upd.result.palette,
                        )
                        return upd

                upd = await asyncio.get_running_loop().run_in_executor(
                    None, client_flow
                )
                # the chain head is a live engine on the dynamic backend
                engine = server.gateway.graph_store.pop_engine(upd.fingerprint)
                assert engine is not None
                assert engine._is_dynamic
            finally:
                await server.close()

        asyncio.run(drive())

    def test_backend_choice_does_not_fragment_the_cache(self):
        """backend is an execution hint, not a result-affecting field:
        the same delta under either backend shares one child digest."""
        base, matching = updatable_instance()

        async def drive():
            async with BatchingGateway() as gateway:
                solved = await gateway.submit(base, SolverConfig(seed=1))
                upd = await gateway.submit_update(
                    solved.fingerprint, edges_added=[matching[0]],
                    backend="dynamic",
                )
                replay = await gateway.submit_update(
                    solved.fingerprint, edges_added=[matching[0]],
                    backend="immutable",
                )
                assert replay.cached
                assert replay.fingerprint == upd.fingerprint

        asyncio.run(drive())

    def test_invalid_backend_is_protocol_error(self):
        async def drive():
            server = ColoringServer(port=0, workers=1)
            await server.start()
            try:
                port = server.port

                def client_flow():
                    import json
                    import socket

                    with socket.create_connection(("127.0.0.1", port), 10) as sock:
                        reader = sock.makefile("r", encoding="utf-8")
                        sock.sendall((json.dumps({
                            "id": 1, "op": "update",
                            "parent_digest": "x" * 64,
                            "edges_added": [[0, 1]],
                            "backend": "nope",
                        }) + "\n").encode("utf-8"))
                        return json.loads(reader.readline())

                reply = await asyncio.get_running_loop().run_in_executor(
                    None, client_flow
                )
                assert not reply["ok"]
                assert reply["error"]["type"] == "protocol"
                assert "backend" in reply["error"]["message"]
            finally:
                await server.close()

        asyncio.run(drive())

    def test_async_client_passes_backend(self):
        base, matching = updatable_instance()

        async def drive():
            server = ColoringServer(port=0, workers=1)
            await server.start()
            try:
                from repro.service.client import AsyncColoringClient

                async with AsyncColoringClient(port=server.port) as client:
                    solved = await client.solve(base, seed=1)
                    upd = await client.update(
                        solved.fingerprint,
                        edges_added=[matching[0]],
                        backend="dynamic",
                    )
                    assert upd.parent_digest == solved.fingerprint
                engine = server.gateway.graph_store.pop_engine(upd.fingerprint)
                assert engine is not None and engine._is_dynamic
            finally:
                await server.close()

        asyncio.run(drive())


def test_solve_results_seed_the_graph_store():
    base, _ = updatable_instance()

    async def drive():
        async with BatchingGateway() as gateway:
            reply = await gateway.submit(base, SolverConfig(seed=2))
            stored = gateway.graph_store.get(reply.fingerprint)
            assert stored is not None
            assert stored.num_edges == base.num_edges
            # a cache hit must not require the graph store
            again = await gateway.submit(base, SolverConfig(seed=2))
            assert again.cached

    asyncio.run(drive())
