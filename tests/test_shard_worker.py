"""ShardWorker / ShardSupervisor process-lifecycle tests.

The policy pieces (argv construction, backoff schedule, restart budget)
are tested without spawning anything; one class then exercises the real
thing — ``python -m repro serve`` children booted through the port-file
handshake, killed mid-run, and restarted by the supervisor's monitor
loop.
"""

from __future__ import annotations

import asyncio
import sys
import time
from pathlib import Path

import pytest

from repro.errors import ShardFailedError
from repro.graphs.generators import random_regular_graph
from repro.service import ColoringClient, ShardSupervisor, ShardWorker


class TestPolicyWithoutProcesses:
    def test_command_construction(self):
        worker = ShardWorker(
            "shard-3", host="10.0.0.1", serve_args={"max-queue": 16, "workers": 2}
        )
        try:
            cmd = worker.command(Path("/tmp/pf"))
            assert cmd[:4] == [sys.executable, "-m", "repro", "serve"]
            assert cmd[cmd.index("--host") + 1] == "10.0.0.1"
            assert cmd[cmd.index("--port") + 1] == "0"
            assert cmd[cmd.index("--port-file") + 1] == "/tmp/pf"
            assert cmd[cmd.index("--max-queue") + 1] == "16"
            assert cmd[cmd.index("--workers") + 1] == "2"
        finally:
            worker.close()

    def test_backoff_doubles_and_caps(self):
        worker = ShardWorker(
            "shard-0", backoff_base_s=0.25, backoff_cap_s=5.0
        )
        try:
            observed = []
            for _ in range(6):
                observed.append(worker.next_backoff_s())
                worker._consecutive_restarts += 1
            assert observed == [0.25, 0.5, 1.0, 2.0, 4.0, 5.0]
            worker.note_healthy()
            assert worker.next_backoff_s() == 0.25
        finally:
            worker.close()

    def test_restart_budget_marks_worker_failed(self):
        worker = ShardWorker(
            "shard-0", max_restarts=3, restart_window_s=60.0,
            backoff_base_s=0.0,
        )
        # stub out the process work: only the budget logic runs
        worker.start = lambda: ("127.0.0.1", 1)  # type: ignore[method-assign]
        worker.stop = lambda deadline_s=5.0: None  # type: ignore[method-assign]
        try:
            for _ in range(3):
                assert worker.restart() == ("127.0.0.1", 1)
            with pytest.raises(ShardFailedError):
                worker.restart()
            assert worker.failed
            # a failed worker refuses further restarts immediately
            with pytest.raises(ShardFailedError):
                worker.restart()
        finally:
            worker._tmpdir.cleanup()

    def test_restart_budget_window_slides(self):
        worker = ShardWorker("shard-0", max_restarts=2, restart_window_s=0.05)
        worker.start = lambda: ("127.0.0.1", 1)  # type: ignore[method-assign]
        worker.stop = lambda deadline_s=5.0: None  # type: ignore[method-assign]
        try:
            worker.restart()
            worker.restart()
            time.sleep(0.06)  # the earlier restarts age out of the window
            worker.restart()
            assert not worker.failed
        finally:
            worker._tmpdir.cleanup()

    def test_supervisor_needs_at_least_one_shard(self):
        with pytest.raises(ValueError):
            ShardSupervisor(0)
        with pytest.raises(ValueError):
            ShardSupervisor([])


class TestRealProcesses:
    """Spawns real ``repro serve`` children (a few seconds each)."""

    def test_worker_boot_failure_is_typed_and_reaped(self):
        class Doomed(ShardWorker):
            def command(self, port_file):
                return [sys.executable, "-c", "import sys; sys.exit(3)"]

        worker = Doomed("shard-0", boot_timeout_s=20.0)
        try:
            with pytest.raises(ShardFailedError, match="exited with code 3"):
                worker.start()
            assert not worker.alive()
        finally:
            worker.close()

    def test_fleet_serves_and_survives_a_kill(self):
        graph = random_regular_graph(32, 3, seed=0)
        supervisor = ShardSupervisor(
            1,
            serve_args={"workers": 1},
            poll_interval_s=0.05,
            boot_timeout_s=60.0,
            backoff_base_s=0.0,
        )

        class RouterSpy:
            def __init__(self):
                self.updates = []

            def update_shard(self, index, address):
                self.updates.append((index, address))

        spy = RouterSpy()

        async def drive():
            loop = asyncio.get_running_loop()
            addresses = await loop.run_in_executor(None, supervisor.start)
            worker = supervisor.workers[0]
            host, port = addresses[0]

            def solve_once(h, p):
                with ColoringClient(h, p, timeout=30.0) as client:
                    assert client.ping()
                    return client.solve(graph, seed=1)

            first = await loop.run_in_executor(None, solve_once, host, port)
            assert first.result.palette >= 1
            assert worker.ping()

            stop = asyncio.Event()
            monitor = loop.create_task(supervisor.monitor(spy, stop=stop))
            try:
                # murder the child; the monitor must bring it back
                worker.process.kill()
                deadline = time.monotonic() + 60.0
                # the router push is the last step of a restart — once
                # the spy hears it, the whole cycle completed
                while time.monotonic() < deadline and not spy.updates:
                    await asyncio.sleep(0.05)
                assert spy.updates and spy.updates[-1][0] == 0
                assert worker.restarts >= 1 and worker.alive()
                new_host, new_port = spy.updates[-1][1]
                again = await loop.run_in_executor(
                    None, solve_once, new_host, new_port
                )
                # fresh process, cold cache — same request still served
                assert not again.cached
                assert again.fingerprint == first.fingerprint
            finally:
                stop.set()
                await monitor

        try:
            asyncio.run(drive())
        finally:
            supervisor.stop(drain_s=2.0)

    def test_sigterm_drains_to_clean_exit(self):
        supervisor = ShardSupervisor(
            1, serve_args={"workers": 1}, boot_timeout_s=60.0
        )
        try:
            supervisor.start()
            worker = supervisor.workers[0]
            process = worker.process
            worker.stop(deadline_s=10.0)
            # SIGTERM → graceful drain → clean exit, not a kill
            assert process.returncode == 0
        finally:
            supervisor.stop(drain_s=2.0)
