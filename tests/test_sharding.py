"""Router correctness over in-process shards + graceful shutdown.

Two real :class:`ColoringServer` backends and a :class:`ShardRouter`
front tier run in one event loop (no child processes — that is
``tests/test_shard_worker.py``), so these stay tier-1-fast while
exercising the full NDJSON wire path:

* routed solves are **bit-identical** to the same requests served by a
  single-process server, and land deterministically on the ring-owner
  shard (dup requests hit its cache);
* update chains never cross shards (the chain-head engine stays in one
  shard's GraphStore);
* stale-parent / overload / dead-shard all surface as the protocol's
  typed, retriable errors;
* aggregated stats keep the single-server shape;
* ``shutdown()`` drains in-flight requests before closing.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.analysis.harness import carve_matching
from repro.api import SolverConfig
from repro.errors import (
    ServiceOverloadedError,
    StaleParentError,
)
from repro.graphs.generators import random_regular_graph
from repro.graphs.validation import validate_coloring
from repro.service import (
    AsyncColoringClient,
    ColoringServer,
    ShardRouter,
    request_fingerprint,
)


def updatable_instance(n=64, delta=4, slack=4, seed=0):
    full = random_regular_graph(n, delta, seed=seed)
    matching = carve_matching(full, slack)
    return full.apply_updates(removed=matching), matching


class _Cluster:
    """Two in-process shards behind a router, torn down reliably."""

    def __init__(self, n_shards: int = 2, **server_kwargs):
        self.servers = [
            ColoringServer(port=0, workers=1, **server_kwargs)
            for _ in range(n_shards)
        ]
        self.router: ShardRouter | None = None

    async def __aenter__(self) -> "_Cluster":
        addresses = [await server.start() for server in self.servers]
        self.router = ShardRouter(addresses, port=0)
        await self.router.start()
        return self

    async def __aexit__(self, *exc) -> None:
        if self.router is not None:
            await self.router.close()
        for server in self.servers:
            await server.close()

    @property
    def port(self) -> int:
        assert self.router is not None
        return self.router.port

    def shard_of(self, graph, config: SolverConfig) -> int:
        """The shard index a solve for (graph, config) routes to —
        computed exactly as the router does, from the cache digest."""
        assert self.router is not None
        digest = request_fingerprint(graph, config.without_observer())
        return self.router._shard_for_digest(digest)


class TestRoutedSolve:
    def test_bit_identical_and_cached_on_owner_shard(self):
        graphs = [random_regular_graph(48, 3, seed=s) for s in range(4)]
        config = SolverConfig(algorithm="auto", seed=1)

        async def drive():
            async with _Cluster() as cluster:
                # the acceptance bar: routed solves bit-identical to the
                # same requests against one single-process server
                reference = ColoringServer(port=0, workers=1)
                await reference.start()
                try:
                    async with AsyncColoringClient(port=reference.port) as ref:
                        single = [
                            await ref.solve(g, algorithm="auto", seed=1)
                            for g in graphs
                        ]
                    async with AsyncColoringClient(port=cluster.port) as client:
                        assert await client.ping()
                        first = [
                            await client.solve(g, algorithm="auto", seed=1)
                            for g in graphs
                        ]
                        replay = [
                            await client.solve(g, algorithm="auto", seed=1)
                            for g in graphs
                        ]
                finally:
                    await reference.close()
                expected_shards = [
                    cluster.shard_of(g, config) for g in graphs
                ]
                per_shard_hits = [
                    server.gateway.cache.stats().hits
                    for server in cluster.servers
                ]
                return single, first, replay, expected_shards, per_shard_hits

        single, first, replay, expected_shards, per_shard_hits = asyncio.run(
            drive()
        )
        for graph, reply, reference in zip(graphs, first, single):
            assert not reply.cached
            assert list(reply.result.colors) == list(reference.result.colors)
            assert (
                reply.result.content_digest()
                == reference.result.content_digest()
            )
            assert reply.fingerprint == reference.fingerprint
            validate_coloring(
                graph, list(reply.result.colors),
                max_colors=reply.result.palette,
            )
        # dup requests route to the same (owner) shard and hit its cache
        assert all(r.cached for r in replay)
        for shard in range(2):
            owned = sum(1 for s in expected_shards if s == shard)
            assert per_shard_hits[shard] == owned

    def test_protocol_error_and_unknown_op(self):
        async def drive():
            async with _Cluster() as cluster:
                reader, writer = await asyncio.open_connection(
                    port=cluster.port
                )

                async def ask(obj):
                    writer.write((json.dumps(obj) + "\n").encode())
                    await writer.drain()
                    return json.loads(await reader.readline())

                bad_op = await asyncio.wait_for(ask({"op": "wat", "id": 1}), 30)
                bad_graph = await asyncio.wait_for(
                    ask({"id": 2, "op": "solve", "graph": {"edges": "nope"}}),
                    30,
                )
                ping = await asyncio.wait_for(ask({"op": "ping", "id": 3}), 30)
                writer.close()
                await writer.wait_closed()
                return bad_op, bad_graph, ping

        bad_op, bad_graph, ping = asyncio.run(drive())
        assert not bad_op["ok"] and bad_op["error"]["type"] == "protocol"
        assert not bad_graph["ok"] and bad_graph["error"]["type"] == "protocol"
        assert ping["ok"] and ping["pong"] and ping["shards"] == 2

    def test_overload_surfaces_through_router(self):
        graphs = [random_regular_graph(256, 3, seed=s) for s in range(8)]

        async def drive():
            async with _Cluster(
                max_queue=1, max_batch=1, max_wait_s=0.0
            ) as cluster:
                async with AsyncColoringClient(port=cluster.port) as client:
                    return await asyncio.wait_for(
                        asyncio.gather(
                            *(client.solve(g, validate=False, seed=0)
                              for g in graphs),
                            return_exceptions=True,
                        ),
                        timeout=60,
                    )

        outcomes = asyncio.run(drive())
        rejected = [o for o in outcomes if isinstance(o, ServiceOverloadedError)]
        served = [o for o in outcomes if not isinstance(o, BaseException)]
        assert rejected, "burst past max_queue=1 must shed load"
        assert served, "admitted requests must still complete"
        assert len(rejected) + len(served) == len(graphs)


class TestRoutedUpdates:
    def test_chain_never_crosses_shards(self):
        base, matching = updatable_instance()
        config = SolverConfig(seed=1)

        async def drive():
            async with _Cluster() as cluster:
                async with AsyncColoringClient(port=cluster.port) as client:
                    solved = await client.solve(base, seed=1)
                    upd1 = await client.update(
                        solved.fingerprint, edges_added=[matching[0]]
                    )
                    upd2 = await client.update(
                        upd1.fingerprint,
                        edges_added=[matching[1]],
                        edges_removed=[matching[0]],
                    )
                    replay = await client.update(
                        solved.fingerprint, edges_added=[matching[0]]
                    )
                owner = cluster.shard_of(base, config)
                chains = [
                    server.gateway.graph_store.stats()["chains"]
                    for server in cluster.servers
                ]
                return solved, upd1, upd2, replay, owner, chains

        solved, upd1, upd2, replay, owner, chains = asyncio.run(drive())
        assert upd1.parent_digest == solved.fingerprint
        assert upd2.parent_digest == upd1.fingerprint
        assert replay.cached
        assert replay.result.content_digest() == upd1.result.content_digest()
        child = base.apply_updates(added=[matching[0]])
        validate_coloring(
            child, list(upd1.result.colors), max_colors=upd1.result.palette
        )
        # the whole chain's engines live on the shard that owns the root
        # solve digest; the other shard never saw an update
        assert chains[owner] >= 1
        assert chains[1 - owner] == 0

    def test_stale_parent_is_typed_and_fallback_reseeds(self):
        base, matching = updatable_instance()

        async def drive():
            async with _Cluster() as cluster:
                async with AsyncColoringClient(port=cluster.port) as client:
                    with pytest.raises(StaleParentError):
                        await client.update("d" * 64, edges_added=[matching[0]])
                    # the client's existing recovery works unchanged
                    # through the router: re-solve the applied child,
                    # then chain off the re-seeded parent
                    reseeded = await client.update(
                        "d" * 64,
                        edges_added=[matching[0]],
                        fallback_graph=base,
                    )
                    assert reseeded.update is None
                    chained = await client.update(
                        reseeded.fingerprint, edges_added=[matching[1]]
                    )
                    assert chained.parent_digest == reseeded.fingerprint

        asyncio.run(drive())


class TestDeadShard:
    def test_dead_shard_answers_overloaded_and_survivors_serve(self):
        graphs = [random_regular_graph(32, 3, seed=s) for s in range(12)]
        config = SolverConfig(seed=0)

        async def drive():
            async with _Cluster() as cluster:
                dead = 0
                await cluster.servers[dead].close()
                on_dead = [g for g in graphs
                           if cluster.shard_of(g, config) == dead]
                on_live = [g for g in graphs
                           if cluster.shard_of(g, config) != dead]
                assert on_dead and on_live, "need traffic for both arcs"
                async with AsyncColoringClient(port=cluster.port) as client:
                    dead_outcomes = await asyncio.gather(
                        *(client.solve(g, seed=0) for g in on_dead),
                        return_exceptions=True,
                    )
                    live_replies = [
                        await client.solve(g, seed=0) for g in on_live
                    ]
                return dead_outcomes, live_replies, cluster.router.unavailable

        dead_outcomes, live_replies, unavailable = asyncio.run(drive())
        # the dead arc sheds with the retriable overloaded type — the
        # supervisor (not present here) is what restarts it
        assert all(
            isinstance(o, ServiceOverloadedError) for o in dead_outcomes
        )
        assert unavailable == len(dead_outcomes)
        # the surviving shard's arc is completely unaffected
        for graph, reply in zip(
            [g for g in live_replies], live_replies
        ):
            assert reply.result.palette >= 1
        assert len(live_replies) > 0

    def test_update_shard_repoints_the_link(self):
        base, matching = updatable_instance()

        async def drive():
            async with _Cluster() as cluster:
                config = SolverConfig(seed=1)
                owner = cluster.shard_of(base, config)
                # move the owner's traffic onto a fresh replacement server
                replacement = ColoringServer(port=0, workers=1)
                address = await replacement.start()
                try:
                    await cluster.servers[owner].close()
                    cluster.router.update_shard(owner, address)
                    async with AsyncColoringClient(port=cluster.port) as client:
                        reply = await client.solve(base, seed=1)
                    return reply, replacement.gateway.metrics.completed
                finally:
                    await replacement.close()

        reply, completed = asyncio.run(drive())
        assert reply.result.palette >= 1
        assert completed == 1  # the replacement served the owner's arc


class TestAggregatedStats:
    def test_cluster_snapshot_keeps_single_server_shape(self):
        graphs = [random_regular_graph(32, 3, seed=s) for s in range(3)]

        async def drive():
            async with _Cluster() as cluster:
                async with AsyncColoringClient(port=cluster.port) as client:
                    for g in graphs:
                        await client.solve(g, seed=0)
                    await client.solve(graphs[0], seed=0)  # one cache hit
                    return await client.stats()

        stats = asyncio.run(drive())
        # the single-server shape tooling reads (bench harness, smokes)
        assert stats["metrics"]["completed"] == 4
        assert stats["metrics"]["cached"] == 1
        assert stats["cache"]["hits"] == 1
        assert stats["cache"]["puts"] == 3
        assert stats["graph_store"]["entries"] >= 3
        assert "latency" in stats["metrics"]
        assert stats["metrics"]["latency"]["count"] == 4
        # plus the cluster-only sections
        assert stats["router"]["shards"] == 2
        assert stats["router"]["alive"] == 2
        assert stats["router"]["routed"]["solve"] == 4
        assert sum(stats["router"]["per_shard"]) == 4
        assert len(stats["shards"]) == 2
        assert all(s["alive"] for s in stats["shards"])

    def test_dead_shard_reported_not_fatal(self):
        async def drive():
            async with _Cluster() as cluster:
                await cluster.servers[1].close()
                async with AsyncColoringClient(port=cluster.port) as client:
                    return await client.stats()

        stats = asyncio.run(drive())
        assert stats["router"]["alive"] == 1
        dead = [s for s in stats["shards"] if not s["alive"]]
        assert len(dead) == 1 and "error" in dead[0]


class TestGracefulShutdown:
    def test_shutdown_drains_in_flight_requests(self):
        graph = random_regular_graph(512, 4, seed=7)

        async def drive():
            server = ColoringServer(port=0, workers=1)
            await server.start()
            client = AsyncColoringClient(port=server.port)
            await client.connect()
            try:
                in_flight = asyncio.ensure_future(
                    client.solve(graph, seed=0, validate=False)
                )
                # the request is on the wire before shutdown begins
                await asyncio.sleep(0.05)
                await asyncio.wait_for(server.shutdown(drain_s=30.0), 60)
                reply = await asyncio.wait_for(in_flight, 10)
                # drained, not dropped: the reply arrived after shutdown
                assert reply.result.n == 512
                # ...and the listener is gone
                with pytest.raises(OSError):
                    await asyncio.open_connection(port=server.port)
            finally:
                await client.close()

        asyncio.run(drive())

    def test_shutdown_deadline_bounds_the_wait(self):
        async def drive():
            server = ColoringServer(port=0, workers=1)
            await server.start()
            try:
                # nothing in flight: shutdown is immediate even with a
                # generous drain budget
                await asyncio.wait_for(server.shutdown(drain_s=30.0), 5)
            finally:
                await server.close()  # idempotent

        asyncio.run(drive())

    def test_router_shutdown_closes_links(self):
        async def drive():
            async with _Cluster() as cluster:
                async with AsyncColoringClient(port=cluster.port) as client:
                    await client.solve(
                        random_regular_graph(16, 3, seed=0), seed=0
                    )
                await asyncio.wait_for(cluster.router.shutdown(drain_s=5.0), 15)
                with pytest.raises(OSError):
                    await asyncio.open_connection(port=cluster.port)

        asyncio.run(drive())
