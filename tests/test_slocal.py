"""Tests for the SLOCAL model and Remark 17's Δ-coloring."""

import random

import pytest

from repro.core.brooks import default_fix_radius
from repro.core.slocal_coloring import slocal_delta_coloring
from repro.graphs.generators import (
    high_girth_regular_graph,
    random_nice_graph,
    random_regular_graph,
    torus_grid,
)
from repro.graphs.graph import Graph
from repro.graphs.validation import validate_coloring
from repro.local.slocal import SLocalSimulator


class TestSimulator:
    def test_write_radius_measured(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        outputs = [0, 0, 0, 0]

        def step(v, graph, out):
            out[v] = 1
            if v == 0:
                out[2] = 2  # write two hops away
                return {v, 2}, 1
            return {v}, 1

        run = SLocalSimulator(g).run([0, 1, 2, 3], step, outputs)
        assert run.write_radius == 2
        assert run.per_node_radius[0] == 2
        assert run.per_node_radius[3] == 1

    def test_empty_write(self):
        g = Graph(2, [(0, 1)])

        def step(v, graph, out):
            return set(), 0

        run = SLocalSimulator(g).run([0, 1], step, [0, 0])
        assert run.write_radius == 0 and run.read_radius == 0


class TestSLocalColoring:
    @pytest.mark.parametrize("d,seed", [(3, 0), (4, 1), (5, 2)])
    def test_id_order(self, d, seed):
        g = random_regular_graph(300, d, seed=seed)
        colors, run = slocal_delta_coloring(g)
        validate_coloring(g, colors, max_colors=d)
        assert run.write_radius <= default_fix_radius(g.n, d)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_adversarial_order(self, seed):
        g = random_regular_graph(300, 4, seed=seed + 10)
        order = list(range(g.n))
        random.Random(seed).shuffle(order)
        colors, run = slocal_delta_coloring(g, order)
        validate_coloring(g, colors, max_colors=4)
        assert run.write_radius <= default_fix_radius(g.n, 4)

    def test_reverse_order(self):
        g = torus_grid(10, 10)
        colors, run = slocal_delta_coloring(g, list(reversed(range(g.n))))
        validate_coloring(g, colors, max_colors=4)

    def test_high_girth(self):
        g = high_girth_regular_graph(400, 3, girth=8, seed=3)
        colors, run = slocal_delta_coloring(g)
        validate_coloring(g, colors, max_colors=3)
        assert run.write_radius <= default_fix_radius(g.n, 3)

    def test_irregular(self):
        g = random_nice_graph(200, 4, seed=7)
        colors, run = slocal_delta_coloring(g)
        validate_coloring(g, colors, max_colors=4)

    def test_locality_is_small_for_most_nodes(self):
        """Remark 17's practical upshot: almost every node commits with
        locality O(1); only the final stragglers pay log-sized walks."""
        g = random_regular_graph(500, 4, seed=9)
        _colors, run = slocal_delta_coloring(g)
        cheap = sum(1 for r in run.per_node_radius.values() if r <= 2)
        assert cheap >= 0.9 * g.n
