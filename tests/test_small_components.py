"""Tests for phase (6): coloring small leftover components."""

import random

import pytest

from repro.core.happiness import build_happiness_layers
from repro.core.marking import default_selection_probability, marking_process
from repro.core.small_components import color_small_components
from repro.graphs.generators import high_girth_regular_graph
from repro.graphs.validation import UNCOLORED, validate_coloring
from repro.local.rounds import RoundLedger


def _leftover_scenario(n=1200, d=3, girth=8, seed=0, r=3):
    """Build a genuine phase-6 input by running phases 4-5 with a small
    happiness radius so that leftovers exist."""
    g = high_girth_regular_graph(n, d, girth, seed=seed)
    h_nodes = set(range(g.n))
    colors = [UNCOLORED] * g.n
    p = default_selection_probability(d, 6)
    marking = marking_process(g, h_nodes, colors, p, 6, random.Random(seed), RoundLedger())
    happiness = build_happiness_layers(g, colors, h_nodes, marking, d, r=r, ledger=RoundLedger())
    return g, colors, happiness, d


class TestPhaseSix:
    @pytest.mark.parametrize("seed", range(5))
    def test_colors_all_leftovers(self, seed):
        g, colors, happiness, d = _leftover_scenario(seed=seed)
        if not happiness.leftover:
            pytest.skip("no leftover at this seed")
        ledger = RoundLedger()
        report = color_small_components(
            g, colors, happiness.leftover, d, dcc_radius=2,
            ledger=ledger, rng=random.Random(seed), strict=True,
        )
        for v in happiness.leftover:
            assert colors[v] != UNCOLORED
        validate_coloring(g, colors, allow_partial=True, max_colors=d)
        assert sum(report.component_sizes) == len(happiness.leftover)
        assert ledger.total_rounds == report.max_rounds

    @pytest.mark.parametrize("seed", range(3))
    def test_free_nodes_via_outer_layer(self, seed):
        """Leftover components adjacent to the outermost happiness layer
        have free nodes, so the D-layer path (no fallback) should win."""
        g, colors, happiness, d = _leftover_scenario(seed=seed + 20, r=4)
        if not happiness.leftover:
            pytest.skip("no leftover at this seed")
        report = color_small_components(
            g, colors, happiness.leftover, d, dcc_radius=2,
            ledger=RoundLedger(), rng=random.Random(seed), strict=True,
        )
        if happiness.t_nodes:
            # with T-nodes present the leftover borders the C-layers, so
            # free nodes exist and most components avoid the fallback
            assert report.free_node_components >= report.fallbacks or report.fallbacks == 0

    def test_whole_graph_leftover_fallback(self):
        """With no T-nodes and no boundary the entire graph is leftover;
        the fallback must still produce a valid Δ-coloring."""
        g = high_girth_regular_graph(400, 3, girth=8, seed=33)
        colors = [UNCOLORED] * g.n
        report = color_small_components(
            g, colors, set(range(g.n)), 3, dcc_radius=2,
            ledger=RoundLedger(), rng=random.Random(1),
        )
        validate_coloring(g, colors, max_colors=3)
        assert report.fallbacks == 1

    def test_empty_leftover(self):
        g = high_girth_regular_graph(300, 3, girth=7, seed=4)
        colors = [UNCOLORED] * g.n
        report = color_small_components(
            g, colors, set(), 3, dcc_radius=2, ledger=RoundLedger(), rng=random.Random(0)
        )
        assert report.component_sizes == []

    def test_respects_marked_boundary(self):
        """Leftover coloring must not conflict with marked (color 1)
        neighbours."""
        g, colors, happiness, d = _leftover_scenario(seed=40, r=3)
        if not happiness.leftover:
            pytest.skip("no leftover at this seed")
        marked_before = {v for v in range(g.n) if colors[v] == 1}
        color_small_components(
            g, colors, happiness.leftover, d, dcc_radius=2,
            ledger=RoundLedger(), rng=random.Random(2),
        )
        for v in marked_before:
            assert colors[v] == 1  # untouched
        validate_coloring(g, colors, allow_partial=True, max_colors=d)
