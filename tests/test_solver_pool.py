"""SolverPool lifecycle coverage.

The serving gateway (:mod:`repro.service.batcher`) keeps one warmed pool
alive for the life of the process and keeps dispatching through it after
individual requests fail, so the pool's lifecycle contracts are
load-bearing: a worker exception must not poison the pool, ``close``
must be idempotent, and the context manager must behave like ``close``.
"""

from __future__ import annotations

import pytest

from repro.api import SolverConfig, SolverPool, solve, solve_many
from repro.errors import NotNiceGraphError, ReproError
from repro.graphs.generators import complete_graph, random_regular_graph


@pytest.fixture(scope="module")
def graphs():
    return [random_regular_graph(48, 4, seed=s) for s in range(3)]


class TestSolverPoolLifecycle:
    def test_reuse_after_worker_exception(self, graphs):
        """A bad request (non-nice graph on a needs_nice algorithm) fails
        its batch but leaves the pool serving subsequent batches."""
        config = SolverConfig(algorithm="randomized", seed=1)
        bad = complete_graph(5)
        with SolverPool(workers=2) as pool:
            pool.warm()
            with pytest.raises(NotNiceGraphError):
                pool.solve_many([graphs[0], bad, graphs[1]], config)
            results = pool.solve_many(graphs, config)
            assert len(results) == len(graphs)
            expected = [solve(g, config) for g in graphs]
            assert [r.colors for r in results] == [r.colors for r in expected]

    def test_exception_type_crosses_the_pool_boundary(self, graphs):
        """The engine's own error type survives pickling back to the parent
        (the gateway maps ReproError subclasses to protocol error kinds)."""
        with SolverPool(workers=2) as pool:
            with pytest.raises(ReproError):
                pool.solve_many(
                    [complete_graph(4)], SolverConfig(algorithm="deterministic")
                )

    def test_close_is_idempotent(self, graphs):
        pool = SolverPool(workers=2)
        assert pool.solve_many(graphs[:1], SolverConfig())  # lazily spawns
        pool.close()
        pool.close()  # second close is a no-op, not an error

    def test_close_without_use_is_a_noop(self):
        pool = SolverPool(workers=2)
        pool.close()  # never spawned

    def test_usable_again_after_close(self, graphs):
        """Closing drops the executor; the next use respawns it."""
        pool = SolverPool(workers=2)
        first = pool.solve_many(graphs[:2], SolverConfig(seed=3))
        pool.close()
        second = pool.solve_many(graphs[:2], SolverConfig(seed=3))
        pool.close()
        assert [r.colors for r in first] == [r.colors for r in second]

    def test_context_manager_closes(self, graphs):
        with SolverPool(workers=2) as pool:
            pool.solve_many(graphs[:1], SolverConfig())
            assert pool._executor is not None
        assert pool._executor is None

    def test_context_manager_closes_on_error(self, graphs):
        with pytest.raises(RuntimeError):
            with SolverPool(workers=2) as pool:
                pool.solve_many(graphs[:1], SolverConfig())
                raise RuntimeError("caller bug")
        assert pool._executor is None

    def test_warm_spawns_workers(self):
        pool = SolverPool(workers=2)
        assert pool._executor is None
        try:
            assert pool.warm() is pool
            assert pool._executor is not None
        finally:
            pool.close()

    def test_solve_many_via_closed_then_reopened_pool_matches_inline(self, graphs):
        """solve_many(pool=...) after a close/respawn cycle still equals the
        single-process reference, bit for bit."""
        config = SolverConfig(algorithm="auto", seed=7)
        reference = solve_many(graphs, config, workers=1)
        pool = SolverPool(workers=2)
        pool.close()
        try:
            pooled = solve_many(graphs, config, pool=pool)
        finally:
            pool.close()
        # content digests ignore wall_time_s, the only run-to-run noise
        assert [r.content_digest() for r in pooled] == [
            r.content_digest() for r in reference
        ]
