"""Tests for the non-nice special cases and whole-graph dispatch."""

import pytest

from repro.core.special_cases import color_graph, color_special
from repro.errors import NotNiceGraphError
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    disjoint_union,
    path_graph,
    random_regular_graph,
    torus_grid,
)
from repro.graphs.graph import Graph
from repro.graphs.validation import validate_coloring


class TestSpecialFamilies:
    @pytest.mark.parametrize("n", [4, 6, 10, 20])
    def test_even_cycles_two_colors(self, n):
        g = cycle_graph(n)
        result = color_special(g)
        validate_coloring(g, result.colors, max_colors=2)
        assert result.family == "even-cycle"
        assert result.num_colors == 2

    @pytest.mark.parametrize("n", [5, 9, 21])
    def test_odd_cycles_three_colors(self, n):
        g = cycle_graph(n)
        result = color_special(g)
        validate_coloring(g, result.colors, max_colors=3)
        assert result.family == "odd-cycle"
        assert result.num_colors == 3
        # exactly one node wears the third color
        assert sum(1 for c in result.colors if c == 3) == 1

    def test_triangle_classified_as_clique(self):
        # C3 = K3: the clique branch wins and 3 colors are used
        result = color_special(cycle_graph(3))
        assert result.family == "clique"
        assert result.num_colors == 3

    @pytest.mark.parametrize("n", [1, 2, 5, 12])
    def test_paths_two_colors(self, n):
        g = path_graph(n)
        result = color_special(g)
        validate_coloring(g, result.colors, max_colors=2)

    @pytest.mark.parametrize("k", [2, 3, 6])
    def test_cliques_k_colors(self, k):
        g = complete_graph(k)
        result = color_special(g)
        validate_coloring(g, result.colors, max_colors=k)
        assert result.num_colors == k

    def test_rejects_nice_graph(self):
        with pytest.raises(NotNiceGraphError):
            color_special(torus_grid(5, 5))

    def test_linear_round_cost(self):
        # paths/cycles honestly cost Θ(n) LOCAL rounds
        assert color_special(cycle_graph(30)).rounds == 30
        assert color_special(path_graph(17)).rounds == 17
        assert color_special(complete_graph(9)).rounds == 1


class TestColorGraphDispatch:
    def test_mixed_components(self):
        g = disjoint_union([
            cycle_graph(9),
            complete_graph(4),
            random_regular_graph(80, 3, seed=1),
            path_graph(5),
            Graph(1),
        ])
        result = color_graph(g, seed=2)
        validate_coloring(g, result.colors, max_colors=result.num_colors)
        assert result.component_families == {
            "odd-cycle": 1, "clique": 1, "nice": 1, "path": 1, "isolated": 1,
        }
        # palette = max over components: K4 needs 4, odd cycle 3, cubic 3
        assert result.num_colors == 4

    def test_single_nice_component(self):
        g = random_regular_graph(100, 4, seed=3)
        result = color_graph(g, seed=3)
        validate_coloring(g, result.colors, max_colors=4)
        assert result.component_families == {"nice": 1}

    def test_all_isolated(self):
        g = Graph(5)
        result = color_graph(g)
        assert result.num_colors == 1
        assert set(result.colors) == {1}

    def test_failure_injection(self):
        """Crash a random 10% of a colored network; the survivor graph is
        recolored per component regardless of what the failures left."""
        import random

        g = random_regular_graph(400, 4, seed=5)
        rng = random.Random(5)
        dead = set(rng.sample(range(g.n), 40))
        survivors = [v for v in range(g.n) if v not in dead]
        sub, _originals = g.subgraph(survivors)
        result = color_graph(sub, seed=5)
        validate_coloring(sub, result.colors, max_colors=result.num_colors)
        # degree cap survives node removal
        assert result.num_colors <= 5

    def test_rounds_are_max_over_components(self):
        g = disjoint_union([cycle_graph(40), complete_graph(4)])
        result = color_graph(g)
        assert result.rounds == 40  # the cycle dominates
