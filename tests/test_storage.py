"""Tests for the storage API layer: journal framing, protocols, config.

The durable backend's crash-injection suite lives in
``test_storage_durable.py`` and the warm-restart replay suite in
``test_storage_replay.py``; this file covers the building blocks — the
framed journal, the protocol conformance of both backends, the
consolidated :class:`StorageConfig`, the tiered store's semantics, and
the deprecation shims on the old gateway kwargs.
"""

from __future__ import annotations

import warnings

import pytest

from repro.api import solve
from repro.graphs.graph import Graph
from repro.service import BatchingGateway, GraphStore, ResultCache
from repro.service.storage import (
    DurableStore,
    FsyncPolicy,
    Journal,
    ResultStore,
    StorageConfig,
    TieredResultStore,
    UpdateWAL,
    WriteAheadLog,
    decode_record,
    encode_record,
)


@pytest.fixture
def result():
    return solve(Graph(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]))


class TestJournalFraming:
    def test_encode_decode_round_trip(self):
        payload = {"kind": "result", "key": "r1:" + "a" * 60, "x": [1, 2]}
        line = encode_record(payload)
        assert line.endswith(b"\n")
        assert decode_record(line) == payload

    def test_corrupt_crc_rejected(self):
        line = bytearray(encode_record({"k": "v"}))
        line[12] ^= 0xFF  # flip a payload byte; the crc no longer matches
        assert decode_record(bytes(line)) is None

    def test_torn_line_rejected(self):
        line = encode_record({"k": "v"})
        assert decode_record(line[: len(line) // 2]) is None
        assert decode_record(b"") is None
        assert decode_record(b"nothexx {}") is None

    def test_append_returns_exact_offsets(self, tmp_path):
        with Journal(tmp_path / "j.log") as journal:
            offsets = [journal.append({"i": i, "pad": "x" * i}) for i in range(5)]
            for (off, length), (_, _, payload) in zip(offsets, journal.scan()):
                assert journal.read_at(off, length) == payload

    def test_scan_stops_at_torn_tail_and_open_truncates(self, tmp_path):
        path = tmp_path / "j.log"
        with Journal(path) as journal:
            journal.append({"i": 0})
            journal.append({"i": 1})
            good_size = journal.size
        with open(path, "ab") as handle:
            handle.write(b"00000000 {\"torn\": tru")  # no newline, bad json
        reopened = Journal(path)
        assert reopened.torn_records == 1
        assert reopened.size == good_size
        assert [p["i"] for _, _, p in reopened.scan()] == [0, 1]
        reopened.close()

    def test_fsync_policy_schedule(self):
        always = FsyncPolicy("always")
        assert all(always.after_append() for _ in range(3))
        never = FsyncPolicy("never")
        assert not any(never.after_append() for _ in range(3))
        assert not never.on_sync()
        batch = FsyncPolicy("batch", batch_ops=3)
        assert [batch.after_append() for _ in range(6)] == [
            False, False, True, False, False, True,
        ]
        assert batch.on_sync()

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError):
            FsyncPolicy("sometimes")


class TestProtocolConformance:
    def test_both_backends_are_result_stores(self, tmp_path):
        durable = DurableStore(tmp_path / "store")
        try:
            assert isinstance(ResultCache(), ResultStore)
            assert isinstance(durable, ResultStore)
            assert isinstance(
                TieredResultStore(ResultCache(), durable), ResultStore
            )
        finally:
            durable.close()

    def test_wal_satisfies_protocol(self, tmp_path):
        with UpdateWAL(tmp_path / "u.wal") as wal:
            assert isinstance(wal, WriteAheadLog)

    def test_result_cache_evict(self, result):
        cache = ResultCache()
        cache.put("k", result)
        assert cache.evict("k") is True
        assert cache.get("k") is None
        assert cache.evict("k") is False
        assert cache.stats().evictions_lru == 1

    def test_graph_store_evict_is_typed(self):
        store = GraphStore()
        store.put("g", Graph(2, [(0, 1)]))
        assert store.evict("g") is True and store.evict("g") is False
        assert store.stats()["evictions_graphs"] == 1
        assert store.stats()["evictions_chains"] == 0


class TestStorageConfig:
    def test_defaults_match_legacy_constructors(self):
        bundle = StorageConfig().build()
        cache, store = bundle.cache, bundle.graph_store
        legacy_cache, legacy_store = ResultCache(), GraphStore()
        assert isinstance(cache, ResultCache)
        assert (cache.max_entries, cache.max_bytes, cache.ttl_s) == (
            legacy_cache.max_entries, legacy_cache.max_bytes, legacy_cache.ttl_s,
        )
        assert (store.max_entries, store.max_bytes) == (
            legacy_store.max_entries, legacy_store.max_bytes,
        )
        assert bundle.durable is None and bundle.wal is None

    def test_validation(self):
        with pytest.raises(ValueError):
            StorageConfig(cache_entries=0)
        with pytest.raises(ValueError):
            StorageConfig(fsync="later")
        with pytest.raises(ValueError):
            StorageConfig(segment_max_bytes=0)

    def test_durable_build_wires_all_pieces(self, tmp_path):
        bundle = StorageConfig(store_dir=tmp_path / "s").build()
        try:
            assert isinstance(bundle.cache, TieredResultStore)
            assert bundle.graph_store.durable is bundle.durable
            assert bundle.wal is not None
            assert bundle.stats()["durable"] is True
        finally:
            bundle.close()

    def test_wal_off(self, tmp_path):
        bundle = StorageConfig(store_dir=tmp_path / "s", wal=False).build()
        try:
            assert bundle.durable is not None and bundle.wal is None
        finally:
            bundle.close()


class TestTieredStore:
    def test_write_through_and_promotion(self, tmp_path, result):
        durable = DurableStore(tmp_path / "s")
        memory = ResultCache()
        tiered = TieredResultStore(memory, durable)
        tiered.put("k", result)
        assert memory.get("k") is result
        assert durable.get("k") is not None
        # cold memory tier: the durable hit promotes
        memory.clear()
        promoted = tiered.get("k")
        assert promoted is not None and tiered.promotions == 1
        assert memory.get("k") is promoted  # now a memory hit
        durable.close()

    def test_clear_spares_the_durable_tier(self, tmp_path, result):
        durable = DurableStore(tmp_path / "s")
        tiered = TieredResultStore(ResultCache(), durable)
        tiered.put("k", result)
        tiered.clear()
        assert tiered.get("k") is not None  # re-read from disk
        durable.close()

    def test_evict_drops_both_tiers(self, tmp_path, result):
        durable = DurableStore(tmp_path / "s")
        tiered = TieredResultStore(ResultCache(), durable)
        tiered.put("k", result)
        assert tiered.evict("k") is True
        assert tiered.get("k") is None
        assert "k" not in tiered and len(tiered) == 0
        durable.close()


class TestGatewayStorageParam:
    def test_legacy_kwargs_warn_and_still_work(self):
        cache, store = ResultCache(max_entries=7), GraphStore(max_entries=5)
        with pytest.warns(DeprecationWarning, match="storage="):
            gateway = BatchingGateway(cache=cache, graph_store=store)
        assert gateway.cache is cache and gateway.graph_store is store

    def test_legacy_kwargs_conflict_with_storage(self):
        with pytest.raises(ValueError):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                BatchingGateway(cache=ResultCache(), storage=StorageConfig())

    def test_bundle_injection_is_not_owned(self, tmp_path):
        bundle = StorageConfig(store_dir=tmp_path / "s").build()
        gateway = BatchingGateway(storage=bundle)
        assert gateway.cache is bundle.cache
        assert gateway._owns_storage is False
        bundle.close()

    def test_default_is_memory_only(self):
        gateway = BatchingGateway()
        assert isinstance(gateway.cache, ResultCache)
        assert gateway.storage.durable is None
        assert "storage" not in gateway.stats()
