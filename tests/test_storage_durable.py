"""Crash-injection tests for the durable backend.

Each test simulates a specific kill point by mutilating the on-disk
state the way a SIGKILL at that instant would leave it, then reopens the
store and asserts the recovery contract:

* **kill mid-append** — a torn record at a segment (or index) tail is
  truncated; everything before it survives.
* **kill between result write and index update** — the segment record
  exists but its index entry doesn't; the open-time scan past the
  highest indexed offset re-indexes it.
* **double replay** — reopening and replaying twice is a no-op on disk
  and converges to the same servable state.

Plus the property test: across a spread of instances, every digest that
went in comes back out bit-identical (``content_digest``-asserted), and
replayed update chains carry valid colorings.
"""

from __future__ import annotations

import pytest

from repro.api import SolverConfig, solve, solve_incremental
from repro.graphs.generators import random_regular_graph
from repro.graphs.graph import Graph
from repro.graphs.validation import validate_coloring
from repro.service import request_fingerprint
from repro.service.storage import (
    DurableStore,
    Journal,
    UpdateWAL,
    replay_chains,
    update_record,
)
from repro.service.graphstore import GraphStore
from repro.service.fingerprint import config_fingerprint, update_fingerprint


def _segment_paths(root):
    return sorted((root / "segments").glob("seg-*.log"))


@pytest.fixture
def ring_result():
    graph = Graph(8, [(i, (i + 1) % 8) for i in range(8)])
    return graph, solve(graph)


class TestKillMidAppend:
    def test_torn_segment_tail_truncated(self, tmp_path, ring_result):
        graph, result = ring_result
        with DurableStore(tmp_path) as store:
            store.put("r1:" + "a" * 60, result)
        seg = _segment_paths(tmp_path)[0]
        intact = seg.stat().st_size
        with open(seg, "ab") as handle:
            handle.write(b'0000dead {"kind": "result", "key": "r1:torn')
        with DurableStore(tmp_path) as reopened:
            assert reopened.torn_records == 1
            assert seg.stat().st_size == intact
            assert reopened.get("r1:" + "a" * 60) is not None
            # the next append lands cleanly after the truncation point
            reopened.put("r1:" + "b" * 60, result)
        with DurableStore(tmp_path) as again:
            assert len(again) == 2

    def test_torn_index_tail_rebuilt_from_segment(self, tmp_path, ring_result):
        _, result = ring_result
        with DurableStore(tmp_path) as store:
            store.put("r1:" + "a" * 60, result)
            store.put("r1:" + "b" * 60, result)
        index = tmp_path / "index.log"
        # tear the last index line mid-record: its segment record survives
        lines = index.read_bytes().splitlines(keepends=True)
        index.write_bytes(b"".join(lines[:-1]) + lines[-1][:10])
        with DurableStore(tmp_path) as reopened:
            assert reopened.get("r1:" + "b" * 60) is not None
            assert reopened.recovered_records == 1

    def test_torn_wal_tail(self, tmp_path):
        path = tmp_path / "update.wal"
        with UpdateWAL(path) as wal:
            wal.append(
                update_record("p" * 64, "c" * 64, [(0, 1)], [], SolverConfig(), "auto")
            )
        with open(path, "ab") as handle:
            handle.write(b"ffffffff {\"parent\": \"to")
        with UpdateWAL(path) as reopened:
            records = list(reopened.replay())
            assert len(records) == 1 and records[0]["child"] == "c" * 64
            assert reopened.stats()["torn_records"] == 1


class TestKillBetweenWriteAndIndex:
    def test_unindexed_record_recovered(self, tmp_path, ring_result):
        _, result = ring_result
        with DurableStore(tmp_path) as store:
            store.put("r1:" + "a" * 60, result)
        # Simulate the crash window: append a record directly to the
        # segment (as DurableStore would) without touching the index.
        seg = _segment_paths(tmp_path)[0]
        with Journal(seg, fsync="always") as journal:
            journal.append(
                {"kind": "result", "key": "r1:" + "c" * 60,
                 "result": result.as_dict()}
            )
        with DurableStore(tmp_path) as reopened:
            assert reopened.recovered_records == 1
            recovered = reopened.get("r1:" + "c" * 60)
            assert recovered is not None
            assert recovered.content_digest() == result.content_digest()

    def test_recovery_is_persisted(self, tmp_path, ring_result):
        _, result = ring_result
        with DurableStore(tmp_path) as store:
            store.put("r1:" + "a" * 60, result)
        seg = _segment_paths(tmp_path)[0]
        with Journal(seg, fsync="always") as journal:
            journal.append(
                {"kind": "result", "key": "r1:" + "c" * 60,
                 "result": result.as_dict()}
            )
        with DurableStore(tmp_path):
            pass  # first open re-indexes and appends the index entry
        with DurableStore(tmp_path) as second:
            assert second.recovered_records == 0  # nothing left to recover
            assert second.get("r1:" + "c" * 60) is not None


class TestIdempotence:
    def test_put_same_digest_writes_once(self, tmp_path, ring_result):
        _, result = ring_result
        with DurableStore(tmp_path) as store:
            store.put("r1:" + "a" * 60, result)
            size = _segment_paths(tmp_path)[0].stat().st_size
            store.put("r1:" + "a" * 60, result)
            assert _segment_paths(tmp_path)[0].stat().st_size == size

    def test_double_replay_converges(self, tmp_path):
        base_graph = random_regular_graph(32, 4, seed=3)
        base_result = solve(base_graph)
        base_key = request_fingerprint(base_graph, SolverConfig())
        config = SolverConfig()
        delta = [(0, 2)] if (0, 2) not in set(base_graph.edges()) else [(1, 3)]
        child_key = update_fingerprint(
            base_key, delta, [], config_fingerprint(config)
        )
        with DurableStore(tmp_path) as store, UpdateWAL(
            tmp_path / "update.wal"
        ) as wal:
            store.put(base_key, base_result)
            store.put_graph(base_key, base_graph)
            wal.append(
                update_record(base_key, child_key, delta, [], config, "dynamic")
            )

        def disk_bytes():
            return sum(p.stat().st_size for p in tmp_path.rglob("*") if p.is_file())

        reports, head_digests = [], []
        for _ in range(2):
            store = DurableStore(tmp_path)
            wal = UpdateWAL(tmp_path / "update.wal")
            graph_store = GraphStore()
            before = disk_bytes()
            report = replay_chains(wal, store, graph_store, cache=None)
            engine = graph_store.pop_engine(child_key)
            assert engine is not None
            head_digests.append(tuple(engine.colors))
            reports.append(
                {k: report[k] for k in report if k != "wall_s"}
            )
            store.close()
            wal.close()
            assert disk_bytes() == before  # replay writes nothing durable
        assert reports[0] == reports[1]
        assert head_digests[0] == head_digests[1]
        assert reports[0]["chains_replayed"] == 1


class TestReplayProperties:
    def test_solve_results_round_trip_bit_identical(self, tmp_path):
        cases = [
            Graph(2, [(0, 1)]),
            Graph(9, [(i, (i + 1) % 9) for i in range(9)]),
            random_regular_graph(24, 3, seed=1),
            random_regular_graph(48, 5, seed=2),
            random_regular_graph(64, 4, seed=7),
        ]
        expected = {}
        with DurableStore(tmp_path, fsync="always") as store:
            for graph in cases:
                result = solve(graph)
                key = request_fingerprint(graph, SolverConfig())
                store.put(key, result)
                expected[key] = result.content_digest()
        with DurableStore(tmp_path) as reopened:
            assert len(reopened) == len(expected)
            for key, digest in expected.items():
                assert reopened.get(key).content_digest() == digest

    def test_replayed_chains_carry_valid_colorings(self, tmp_path):
        config = SolverConfig(seed=5)
        base_graph = random_regular_graph(40, 4, seed=5)
        # carve two edges out so the chain can add them back
        edges = list(base_graph.edges())
        carved = [edges[3], edges[17]]
        parent_graph = base_graph.apply_updates(removed=carved)
        parent_result = solve(parent_graph, config)
        base_key = request_fingerprint(parent_graph, config)

        store = DurableStore(tmp_path)
        wal = UpdateWAL(tmp_path / "update.wal")
        store.put(base_key, parent_result)
        store.put_graph(base_key, parent_graph)
        # build the authoritative chain the way the gateway would
        key, graph, result = base_key, parent_graph, parent_result
        for edge in carved:
            updated = solve_incremental(graph, result, [edge], [], config)
            child = update_fingerprint(
                key, [edge], [], config_fingerprint(config)
            )
            wal.append(update_record(key, child, [edge], [], config, "dynamic"))
            key, graph, result = child, updated.graph, updated.result
        store.close()
        wal.close()

        store = DurableStore(tmp_path)
        wal = UpdateWAL(tmp_path / "update.wal")
        graph_store = GraphStore()
        report = replay_chains(wal, store, graph_store)
        assert report == {
            **report, "chains_replayed": 1, "deltas_replayed": 2,
            "chains_skipped": 0,
        }
        engine = graph_store.pop_engine(key)
        assert engine is not None
        validate_coloring(engine.graph, engine.colors)
        assert engine.graph.num_edges == base_graph.num_edges
        store.close()
        wal.close()

    def test_chain_with_missing_base_is_skipped_not_fatal(self, tmp_path):
        with DurableStore(tmp_path) as store, UpdateWAL(
            tmp_path / "update.wal"
        ) as wal:
            wal.append(
                update_record(
                    "r1:" + "0" * 60, "u1:" + "1" * 60, [(0, 1)], [],
                    SolverConfig(), "auto",
                )
            )
            report = replay_chains(wal, store, GraphStore())
            assert report["chains_seen"] == 1
            assert report["chains_skipped"] == 1
            assert report["chains_replayed"] == 0
