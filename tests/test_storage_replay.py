"""Warm-restart replay through the gateway — the tentpole's contract.

A gateway with a ``store_dir`` must come back from a cold start serving
its old digests from disk (``cached=True``, bit-identical) and with its
update chain heads rebuilt from the WAL, so streams continue across the
restart as if it never happened.  Also covers the typed chain-head
eviction fix: evicting a live engine is visible in the stats, degrades
to :class:`StaleParentError` on next use, and the chain is *recovered*
by WAL replay across a restart — eviction loses memory, not history.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import StaleParentError
from repro.graphs.generators import random_regular_graph
from repro.service import BatchingGateway
from repro.service.storage import StorageConfig


def run(coro):
    return asyncio.run(coro)


@pytest.fixture
def graph():
    return random_regular_graph(48, 4, seed=11)


def _carve(graph, count):
    """``count`` disjoint edges of ``graph`` (to re-add as update deltas)."""
    seen, carved = set(), []
    for u, v in graph.edges():
        if u not in seen and v not in seen:
            carved.append((u, v))
            seen.update((u, v))
            if len(carved) == count:
                break
    return carved


class TestWarmRestart:
    def test_results_and_chains_survive_restart(self, tmp_path, graph):
        delta = _carve(graph, 2)
        parent = graph.apply_updates(removed=delta)

        async def populate():
            gateway = BatchingGateway(
                storage=StorageConfig(store_dir=tmp_path, fsync="always")
            ).warm()
            base = await gateway.submit(parent)
            assert not base.cached
            u1 = await gateway.submit_update(
                base.fingerprint, edges_added=[delta[0]], backend="dynamic"
            )
            u2 = await gateway.submit_update(
                u1.fingerprint, edges_added=[delta[1]], backend="dynamic"
            )
            await gateway.close()
            return base, u1, u2

        base, u1, u2 = run(populate())

        async def restart():
            gateway = BatchingGateway(
                storage=StorageConfig(store_dir=tmp_path)
            ).warm()
            report = gateway.last_replay
            assert report["chains_replayed"] == 1
            assert report["deltas_replayed"] == 2
            # the base solve serves from the durable store, no re-solve
            again = await gateway.submit(parent)
            assert again.cached
            assert again.result.content_digest() == base.result.content_digest()
            # the replayed head result is bit-identical to pre-restart
            head = gateway.cache.get(u2.fingerprint)
            assert head is not None
            assert head.content_digest() == u2.result.content_digest()
            # and the chain continues: a further delta applies in place
            removed = next(iter(parent.edges()))
            u3 = await gateway.submit_update(
                u2.fingerprint, edges_removed=[removed], backend="dynamic"
            )
            assert u3.parent_digest == u2.fingerprint
            stats = gateway.stats()
            assert stats["storage"]["replay"]["chains_replayed"] == 1
            await gateway.close()

        run(restart())

    def test_replay_span_and_metrics_emitted(self, tmp_path, graph):
        async def populate():
            gateway = BatchingGateway(
                storage=StorageConfig(store_dir=tmp_path, fsync="always")
            ).warm()
            base = await gateway.submit(graph)
            await gateway.submit_update(
                base.fingerprint,
                edges_removed=[next(iter(graph.edges()))],
                backend="dynamic",
            )
            await gateway.close()

        run(populate())

        from repro.obs.trace import Tracer

        tracer = Tracer(sample=1.0)

        async def restart():
            gateway = BatchingGateway(
                storage=StorageConfig(store_dir=tmp_path), tracer=tracer
            ).warm()
            snapshot = gateway.metrics.registry.as_dict()
            await gateway.close()
            return snapshot

        snapshot = run(restart())
        spans = [s for s in tracer.spans() if s["name"] == "store.replay"]
        assert len(spans) == 1 and spans[0]["attrs"]["chains_replayed"] == 1
        assert "repro_store_replay_seconds" in snapshot
        assert "repro_store_replayed_total" in snapshot

    def test_double_warm_is_idempotent(self, tmp_path, graph):
        async def populate():
            gateway = BatchingGateway(
                storage=StorageConfig(store_dir=tmp_path, fsync="always")
            ).warm()
            base = await gateway.submit(graph)
            await gateway.submit_update(
                base.fingerprint,
                edges_removed=[next(iter(graph.edges()))],
                backend="dynamic",
            )
            await gateway.close()

        run(populate())

        async def restart_twice():
            gateway = BatchingGateway(
                storage=StorageConfig(store_dir=tmp_path)
            ).warm()
            first = dict(gateway.last_replay)
            gateway.replay()
            second = dict(gateway.last_replay)
            await gateway.close()
            return first, second

        first, second = run(restart_twice())
        for key in ("chains_replayed", "deltas_replayed", "chains_skipped"):
            assert first[key] == second[key]


class TestChainHeadEviction:
    def test_eviction_is_typed_and_degrades_to_stale_parent(self, tmp_path, graph):
        async def scenario():
            gateway = BatchingGateway(
                storage=StorageConfig(
                    store_dir=tmp_path, graph_store_entries=1, fsync="always"
                )
            ).warm()
            base = await gateway.submit(graph)
            u1 = await gateway.submit_update(
                base.fingerprint,
                edges_removed=[next(iter(graph.edges()))],
                backend="dynamic",
            )
            # the head engine is live in the store; evicting it is the
            # typed loss the stats must surface
            assert gateway.graph_store.stats()["chains"] == 1
            assert gateway.graph_store.evict(u1.fingerprint) is True
            assert gateway.graph_store.stats()["evictions_chains"] == 1
            remaining = [
                e for e in graph.edges()
                if e != next(iter(graph.edges()))
            ]
            with pytest.raises(StaleParentError):
                await gateway.submit_update(
                    u1.fingerprint, edges_removed=[remaining[0]],
                    backend="dynamic",
                )
            await gateway.close()
            return u1.fingerprint, remaining[0]

        head_digest, next_delta = run(scenario())

        async def restart():
            # the WAL outlives the eviction: a restarted process replays
            # the chain and the same update now succeeds
            gateway = BatchingGateway(
                storage=StorageConfig(store_dir=tmp_path)
            ).warm()
            assert gateway.last_replay["chains_replayed"] == 1
            reply = await gateway.submit_update(
                head_digest, edges_removed=[next_delta], backend="dynamic"
            )
            assert reply.parent_digest == head_digest
            await gateway.close()

        run(restart())
