"""Tests for coloring validation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ColoringError
from repro.graphs.generators import complete_graph, cycle_graph
from repro.graphs.graph import Graph
from repro.graphs.validation import (
    UNCOLORED,
    count_colors,
    uncolored_nodes,
    validate_coloring,
    validate_coloring_region,
)


class TestValidateColoring:
    def test_accepts_proper(self):
        validate_coloring(cycle_graph(4), [1, 2, 1, 2], max_colors=2)

    def test_rejects_monochromatic_edge(self):
        with pytest.raises(ColoringError, match="monochromatic"):
            validate_coloring(cycle_graph(4), [1, 1, 2, 2])

    def test_rejects_uncolored_by_default(self):
        with pytest.raises(ColoringError, match="uncolored"):
            validate_coloring(cycle_graph(4), [1, 2, 1, UNCOLORED])

    def test_partial_allowed(self):
        validate_coloring(cycle_graph(4), [1, 2, 1, UNCOLORED], allow_partial=True)

    def test_partial_still_checks_conflicts(self):
        with pytest.raises(ColoringError):
            validate_coloring(cycle_graph(4), [1, 1, UNCOLORED, UNCOLORED], allow_partial=True)

    def test_palette_bound(self):
        with pytest.raises(ColoringError, match="out-of-palette"):
            validate_coloring(complete_graph(3), [1, 2, 5], max_colors=3)

    def test_negative_color_rejected(self):
        with pytest.raises(ColoringError, match="out-of-palette"):
            validate_coloring(complete_graph(3), [1, 2, -1])

    def test_wrong_length_rejected(self):
        with pytest.raises(ColoringError, match="entries"):
            validate_coloring(complete_graph(3), [1, 2])

    def test_violations_collected(self):
        try:
            validate_coloring(cycle_graph(6), [1, 1, 1, 1, 1, 1])
        except ColoringError as error:
            assert len(error.violations) >= 2
        else:
            raise AssertionError("should have raised")


def _accepts_region(graph, colors, region, **kwargs) -> bool:
    try:
        validate_coloring_region(graph, colors, region, **kwargs)
        return True
    except ColoringError:
        return False


def _accepts_full(graph, colors, **kwargs) -> bool:
    try:
        validate_coloring(graph, colors, **kwargs)
        return True
    except ColoringError:
        return False


class TestValidateColoringRegion:
    """The dirty-region validator: O(vol(region)) instead of O(n + m),
    exact on its contract (all changes inside the region)."""

    def test_accepts_valid_region(self):
        graph = cycle_graph(6)
        validate_coloring_region(graph, [1, 2, 1, 2, 1, 2], [0, 3], max_colors=2)

    def test_catches_conflict_touching_region(self):
        graph = cycle_graph(6)
        with pytest.raises(ColoringError, match="monochromatic"):
            validate_coloring_region(graph, [1, 1, 2, 1, 2, 3], [0])

    def test_misses_conflicts_outside_region_by_design(self):
        graph = cycle_graph(6)
        bad = [1, 2, 1, 1, 2, 3]  # edge (2, 3) is monochromatic
        assert not _accepts_full(graph, bad)
        assert _accepts_region(graph, bad, [0])

    def test_region_method_on_graph(self):
        graph = cycle_graph(4)
        graph.validate_coloring_region([1, 2, 1, 2], [1, 2], max_colors=2)
        with pytest.raises(ColoringError):
            graph.validate_coloring_region([1, 1, 2, 2], [0, 1], max_colors=2)

    def test_palette_and_uncolored_checks_scoped_to_region(self):
        graph = cycle_graph(5)
        colors = [1, 2, 1, 2, 9]
        with pytest.raises(ColoringError, match="out-of-palette"):
            validate_coloring_region(graph, colors, [4], max_colors=3)
        validate_coloring_region(graph, colors, [1, 2], max_colors=3)
        with pytest.raises(ColoringError, match="uncolored"):
            validate_coloring_region(graph, [UNCOLORED, 2, 1, 2, 3], [0])
        validate_coloring_region(
            graph, [UNCOLORED, 2, 1, 2, 3], [0], allow_partial=True
        )

    def test_in_region_edge_reported_once(self):
        graph = cycle_graph(6)
        try:
            validate_coloring_region(graph, [1, 1, 2, 1, 2, 3], [0, 1])
        except ColoringError as error:
            reports = [v for v in error.violations if "monochromatic" in v]
            assert reports == ["edge (0, 1) is monochromatic (color 1)"]
        else:
            raise AssertionError("should have raised")

    def test_out_of_range_region_node_rejected(self):
        with pytest.raises(ColoringError, match="out of range"):
            validate_coloring_region(cycle_graph(4), [1, 2, 1, 2], [7])

    def test_wrong_length_rejected(self):
        with pytest.raises(ColoringError, match="entries"):
            validate_coloring_region(cycle_graph(4), [1, 2], [0])

    @given(
        n=st.integers(min_value=2, max_value=40),
        p=st.floats(min_value=0.05, max_value=0.6),
        palette=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=1 << 20),
    )
    @settings(max_examples=80, deadline=None)
    def test_region_exactness_property(self, n, p, palette, seed):
        """For random graphs, colorings and repair regions: region
        validation accepts exactly when full validation accepts, whenever
        every edge has an endpoint in the region — in particular for
        region = all nodes.  Corruptions strictly outside the region are
        exactly the cases the full pass still catches."""
        rng = random.Random(seed)
        edges = [
            (u, v)
            for u in range(n)
            for v in range(u + 1, n)
            if rng.random() < p
        ]
        graph = Graph(n, edges)
        colors = [rng.randrange(0, palette + 2) for _ in range(n)]
        region = [v for v in range(n) if rng.random() < 0.5]
        kwargs = {"max_colors": palette, "allow_partial": rng.random() < 0.5}

        full_ok = _accepts_full(graph, colors, **kwargs)
        # the all-nodes region covers every edge: must agree with full
        assert _accepts_region(graph, colors, range(n), **kwargs) == full_ok

        # arbitrary sub-regions never produce false rejections
        if full_ok:
            assert _accepts_region(graph, colors, region, **kwargs)
        # and a deliberate corruption outside the region stays invisible
        # to the region check (shrunk so no region node can see it) but
        # is caught by the full pass, which claims the whole graph
        outside = [v for v in range(n) if v not in region and graph.adj[v]]
        if outside and full_ok:
            v = outside[0]
            u = graph.adj[v][0]
            if u not in region:
                corrupted = list(colors)
                corrupted[u] = 1
                corrupted[v] = 1
                adj_sets = graph.adjacency_sets()
                blind = [
                    w for w in region
                    if w not in (u, v)
                    and u not in adj_sets[w]
                    and v not in adj_sets[w]
                ]
                assert _accepts_region(graph, corrupted, blind, **kwargs)
                assert not _accepts_full(graph, corrupted, **kwargs)


class TestHelpers:
    def test_count_colors(self):
        assert count_colors([1, 2, 2, UNCOLORED, 3]) == 3

    def test_uncolored_nodes(self):
        assert uncolored_nodes([1, UNCOLORED, 2, UNCOLORED]) == [1, 3]
