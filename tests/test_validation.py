"""Tests for coloring validation."""

import pytest

from repro.errors import ColoringError
from repro.graphs.generators import complete_graph, cycle_graph
from repro.graphs.validation import (
    UNCOLORED,
    count_colors,
    uncolored_nodes,
    validate_coloring,
)


class TestValidateColoring:
    def test_accepts_proper(self):
        validate_coloring(cycle_graph(4), [1, 2, 1, 2], max_colors=2)

    def test_rejects_monochromatic_edge(self):
        with pytest.raises(ColoringError, match="monochromatic"):
            validate_coloring(cycle_graph(4), [1, 1, 2, 2])

    def test_rejects_uncolored_by_default(self):
        with pytest.raises(ColoringError, match="uncolored"):
            validate_coloring(cycle_graph(4), [1, 2, 1, UNCOLORED])

    def test_partial_allowed(self):
        validate_coloring(cycle_graph(4), [1, 2, 1, UNCOLORED], allow_partial=True)

    def test_partial_still_checks_conflicts(self):
        with pytest.raises(ColoringError):
            validate_coloring(cycle_graph(4), [1, 1, UNCOLORED, UNCOLORED], allow_partial=True)

    def test_palette_bound(self):
        with pytest.raises(ColoringError, match="out-of-palette"):
            validate_coloring(complete_graph(3), [1, 2, 5], max_colors=3)

    def test_negative_color_rejected(self):
        with pytest.raises(ColoringError, match="out-of-palette"):
            validate_coloring(complete_graph(3), [1, 2, -1])

    def test_wrong_length_rejected(self):
        with pytest.raises(ColoringError, match="entries"):
            validate_coloring(complete_graph(3), [1, 2])

    def test_violations_collected(self):
        try:
            validate_coloring(cycle_graph(6), [1, 1, 1, 1, 1, 1])
        except ColoringError as error:
            assert len(error.violations) >= 2
        else:
            raise AssertionError("should have raised")


class TestHelpers:
    def test_count_colors(self):
        assert count_colors([1, 2, 2, UNCOLORED, 3]) == 3

    def test_uncolored_nodes(self):
        assert uncolored_nodes([1, UNCOLORED, 2, UNCOLORED]) == [1, 3]
